// Tests for the event queue, simulator kernel, and lazy timer.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace ccas {
namespace {

class RecordingHandler : public EventHandler {
 public:
  void on_event(uint32_t tag, uint64_t arg) override {
    tags.push_back(tag);
    args.push_back(arg);
  }
  std::vector<uint32_t> tags;
  std::vector<uint64_t> args;
};

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  RecordingHandler h;
  q.push(Time::nanos(30), &h, 3, 0);
  q.push(Time::nanos(10), &h, 1, 0);
  q.push(Time::nanos(20), &h, 2, 0);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().tag, 1u);
  EXPECT_EQ(q.pop().tag, 2u);
  EXPECT_EQ(q.pop().tag, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  RecordingHandler h;
  for (uint32_t i = 0; i < 100; ++i) q.push(Time::nanos(5), &h, i, 0);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(q.pop().tag, i);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  RecordingHandler h;
  q.push(Time::nanos(10), &h, 1, 0);
  q.push(Time::nanos(5), &h, 0, 0);
  EXPECT_EQ(q.pop().tag, 0u);
  q.push(Time::nanos(7), &h, 2, 0);
  EXPECT_EQ(q.pop().tag, 2u);
  EXPECT_EQ(q.pop().tag, 1u);
}

TEST(EventQueue, PopOnEmptyThrows) {
  // Regression: the old binary heap read heap_.front() of an empty vector
  // (undefined behaviour); the queue must fail loudly instead.
  EventQueue q;
  EXPECT_THROW((void)q.pop(), std::logic_error);
  RecordingHandler h;
  q.push(Time::nanos(5), &h, 0, 0);
  (void)q.pop();
  EXPECT_THROW((void)q.pop(), std::logic_error);  // emptied by popping too
}

TEST(EventQueue, TopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.top(), std::logic_error);
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  RecordingHandler h;
  q.push(Time::nanos(10), &h, 1, 0);
  q.push(Time::seconds_f(100.0), &h, 2, 0);  // beyond the wheels, in overflow
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_THROW((void)q.pop(), std::logic_error);
  q.push(Time::nanos(3), &h, 7, 0);
  EXPECT_EQ(q.pop().tag, 7u);
}

TEST(EventQueue, SpansWheelLevelsAndOverflow) {
  // One event per scheduler tier; order must hold across all of them.
  EventQueue q;
  RecordingHandler h;
  q.push(Time::seconds_f(100.0), &h, 5, 0);  // overflow (> ~68.7s horizon)
  q.push(Time::nanos(1), &h, 1, 0);          // due slot
  q.push(Time::nanos(5000), &h, 2, 0);       // level 0
  q.push(Time::nanos(2'000'000), &h, 3, 0);  // level 1 (2 ms)
  q.push(Time::nanos(1'000'000'000), &h, 4, 0);  // level 2 (1 s)
  for (uint32_t expected = 1; expected <= 5; ++expected) {
    EXPECT_EQ(q.pop().tag, expected);
  }
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, AdvancesClockAndDispatches) {
  Simulator sim;
  RecordingHandler h;
  sim.schedule_in(TimeDelta::millis(5), &h, 42, 7);
  sim.run();
  EXPECT_EQ(sim.now(), Time::zero() + TimeDelta::millis(5));
  ASSERT_EQ(h.tags.size(), 1u);
  EXPECT_EQ(h.tags[0], 42u);
  EXPECT_EQ(h.args[0], 7u);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  RecordingHandler h;
  sim.schedule_at(Time::nanos(100), &h, 1, 0);
  sim.schedule_at(Time::nanos(300), &h, 2, 0);
  sim.run_until(Time::nanos(200));
  EXPECT_EQ(h.tags.size(), 1u);
  EXPECT_EQ(sim.now(), Time::nanos(200));  // clock lands on the deadline
  sim.run_until(Time::nanos(400));
  EXPECT_EQ(h.tags.size(), 2u);
}

TEST(Simulator, EventsScheduledDuringDispatchRun) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_fn_in(TimeDelta::millis(1), chain);
  };
  sim.schedule_fn_in(TimeDelta::millis(1), chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), Time::zero() + TimeDelta::millis(5));
}

TEST(Simulator, RejectsPastEvents) {
  Simulator sim;
  RecordingHandler h;
  sim.schedule_fn_in(TimeDelta::millis(2), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(Time::nanos(10), &h, 0, 0), std::invalid_argument);
}

TEST(Simulator, StopExitsLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_fn_in(TimeDelta::millis(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_fn_in(TimeDelta::millis(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes with the remaining event
  EXPECT_EQ(fired, 2);
}

TEST(Timer, FiresAtExpiry) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_in(TimeDelta::millis(10));
  EXPECT_TRUE(t.is_armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.is_armed());
  EXPECT_EQ(sim.now(), Time::zero() + TimeDelta::millis(10));
}

TEST(Timer, CancelSuppressesCallback) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_in(TimeDelta::millis(10));
  t.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RearmLaterFiresAtNewDeadlineWithoutExtraHeapEntries) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_in(TimeDelta::millis(10));
  const size_t pending_after_first_arm = sim.pending_events();
  // Re-arming later must not add heap entries (the lazy path).
  for (int i = 0; i < 100; ++i) t.arm_in(TimeDelta::millis(10 + i));
  EXPECT_EQ(sim.pending_events(), pending_after_first_arm);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::zero() + TimeDelta::millis(109));
}

TEST(Timer, RearmEarlierFiresEarlier) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_in(TimeDelta::millis(100));
  t.arm_in(TimeDelta::millis(10));
  sim.run_until(Time::zero() + TimeDelta::millis(20));
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 1);  // the stale entry for t=100ms must not re-fire
}

TEST(Timer, ArmInIfIdleKeepsEarlierDeadline) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_in(TimeDelta::millis(5));
  t.arm_in_if_idle(TimeDelta::millis(50));  // ignored: already armed
  sim.run_until(Time::zero() + TimeDelta::millis(10));
  EXPECT_EQ(fired, 1);
}

TEST(Timer, RearmableFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer* tp = nullptr;
  Timer t(sim, [&] {
    if (++fired < 3) tp->arm_in(TimeDelta::millis(1));
  });
  tp = &t;
  t.arm_in(TimeDelta::millis(1));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Profiler, CountsDispatchesByTag) {
  Simulator sim;
  RecordingHandler h;
  sim.schedule_in(TimeDelta::millis(1), &h, 0, 0);
  sim.schedule_in(TimeDelta::millis(2), &h, 3, 0);
  sim.schedule_in(TimeDelta::millis(3), &h, 3, 0);
  sim.schedule_in(TimeDelta::millis(4), &h, 99, 0);  // overflow bucket
  sim.run();
  const SimProfile& p = sim.profile();
  EXPECT_EQ(p.events_dispatched, 4u);
  EXPECT_EQ(p.events_by_tag[0], 1u);
  EXPECT_EQ(p.events_by_tag[3], 2u);
  EXPECT_EQ(p.events_by_tag[SimProfile::kMaxTag], 1u);
  EXPECT_GE(p.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(p.sim_seconds, 0.004);
  EXPECT_GT(p.events_per_wall_sec(), 0.0);
  EXPECT_FALSE(p.summary().empty());
}

TEST(Profiler, CountsSchedulerTierPlacement) {
  Simulator sim;
  RecordingHandler h;
  sim.schedule_at(Time::nanos(100), &h, 0, 0);        // due slot
  sim.schedule_at(Time::nanos(5'000'000), &h, 0, 0);  // a wheel level
  sim.schedule_at(Time::seconds_f(100.0), &h, 0, 0);  // beyond the horizon
  sim.run();
  const SimProfile& p = sim.profile();
  // Draining the overflow heap re-places its events through the normal
  // push path, so the far-future event is counted twice: once into
  // overflow, then again into due/wheel when its page is reached.
  EXPECT_GE(p.pushes_due, 1u);
  EXPECT_GE(p.pushes_wheel, 1u);
  EXPECT_EQ(p.pushes_overflow, 1u);
  EXPECT_GE(p.overflow_drains, 1u);
  EXPECT_EQ(p.pushes_due + p.pushes_wheel, 4u);  // 3 schedules + 1 re-place
}

TEST(Profiler, CountsWastedTimerWakeups) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  // Chase: arm, then re-arm later; the original entry wakes early and
  // re-schedules itself.
  t.arm_in(TimeDelta::millis(10));
  t.arm_in(TimeDelta::millis(30));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.profile().timer_chase_wakeups, 1u);
  // Stale: arm, then re-arm earlier (no slack); the superseded entry is
  // dispatched and discarded by its generation check.
  t.arm_in(TimeDelta::millis(100));
  t.arm_in(TimeDelta::millis(50));
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.profile().timer_stale_wakeups, 1u);
  EXPECT_EQ(sim.profile().timer_wasted_wakeups(), 2u);
}

TEST(Timer, RearmSlackCoalescesEarlierRearms) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.set_rearm_slack(TimeDelta::millis(2));
  t.arm_in(TimeDelta::millis(10));
  const size_t pending = sim.pending_events();
  // Earlier by 1 ms, within the 2 ms slack: the pending entry is reused
  // and no replacement is pushed.
  t.arm_in(TimeDelta::millis(9));
  EXPECT_EQ(sim.pending_events(), pending);
  EXPECT_EQ(sim.profile().timer_coalesced_rearms, 1u);
  sim.run();
  EXPECT_EQ(fired, 1);
  // The callback runs at the original (up to `slack` later) deadline.
  EXPECT_EQ(sim.now(), Time::zero() + TimeDelta::millis(10));
  EXPECT_EQ(sim.profile().timer_stale_wakeups, 0u);
}

TEST(Timer, RearmSlackZeroKeepsExactTiming) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_in(TimeDelta::millis(10));
  t.arm_in(TimeDelta::millis(9));  // earlier, no slack: exact replacement
  sim.run_until(Time::zero() + TimeDelta::millis(9));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.profile().timer_coalesced_rearms, 0u);
}

TEST(Timer, RearmBeyondSlackStillReplacesEntry) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.set_rearm_slack(TimeDelta::millis(2));
  t.arm_in(TimeDelta::millis(10));
  t.arm_in(TimeDelta::millis(5));  // earlier by 5 ms > 2 ms slack
  sim.run_until(Time::zero() + TimeDelta::millis(5));
  EXPECT_EQ(fired, 1);  // fires at the exact new deadline
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.profile().timer_stale_wakeups, 1u);
}

}  // namespace
}  // namespace ccas
