// Tests for the event queue, simulator kernel, and lazy timer.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace ccas {
namespace {

class RecordingHandler : public EventHandler {
 public:
  void on_event(uint32_t tag, uint64_t arg) override {
    tags.push_back(tag);
    args.push_back(arg);
  }
  std::vector<uint32_t> tags;
  std::vector<uint64_t> args;
};

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  RecordingHandler h;
  q.push(Time::nanos(30), &h, 3, 0);
  q.push(Time::nanos(10), &h, 1, 0);
  q.push(Time::nanos(20), &h, 2, 0);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().tag, 1u);
  EXPECT_EQ(q.pop().tag, 2u);
  EXPECT_EQ(q.pop().tag, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  RecordingHandler h;
  for (uint32_t i = 0; i < 100; ++i) q.push(Time::nanos(5), &h, i, 0);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(q.pop().tag, i);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  RecordingHandler h;
  q.push(Time::nanos(10), &h, 1, 0);
  q.push(Time::nanos(5), &h, 0, 0);
  EXPECT_EQ(q.pop().tag, 0u);
  q.push(Time::nanos(7), &h, 2, 0);
  EXPECT_EQ(q.pop().tag, 2u);
  EXPECT_EQ(q.pop().tag, 1u);
}

TEST(Simulator, AdvancesClockAndDispatches) {
  Simulator sim;
  RecordingHandler h;
  sim.schedule_in(TimeDelta::millis(5), &h, 42, 7);
  sim.run();
  EXPECT_EQ(sim.now(), Time::zero() + TimeDelta::millis(5));
  ASSERT_EQ(h.tags.size(), 1u);
  EXPECT_EQ(h.tags[0], 42u);
  EXPECT_EQ(h.args[0], 7u);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  RecordingHandler h;
  sim.schedule_at(Time::nanos(100), &h, 1, 0);
  sim.schedule_at(Time::nanos(300), &h, 2, 0);
  sim.run_until(Time::nanos(200));
  EXPECT_EQ(h.tags.size(), 1u);
  EXPECT_EQ(sim.now(), Time::nanos(200));  // clock lands on the deadline
  sim.run_until(Time::nanos(400));
  EXPECT_EQ(h.tags.size(), 2u);
}

TEST(Simulator, EventsScheduledDuringDispatchRun) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_fn_in(TimeDelta::millis(1), chain);
  };
  sim.schedule_fn_in(TimeDelta::millis(1), chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), Time::zero() + TimeDelta::millis(5));
}

TEST(Simulator, RejectsPastEvents) {
  Simulator sim;
  RecordingHandler h;
  sim.schedule_fn_in(TimeDelta::millis(2), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(Time::nanos(10), &h, 0, 0), std::invalid_argument);
}

TEST(Simulator, StopExitsLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_fn_in(TimeDelta::millis(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_fn_in(TimeDelta::millis(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes with the remaining event
  EXPECT_EQ(fired, 2);
}

TEST(Timer, FiresAtExpiry) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_in(TimeDelta::millis(10));
  EXPECT_TRUE(t.is_armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.is_armed());
  EXPECT_EQ(sim.now(), Time::zero() + TimeDelta::millis(10));
}

TEST(Timer, CancelSuppressesCallback) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_in(TimeDelta::millis(10));
  t.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RearmLaterFiresAtNewDeadlineWithoutExtraHeapEntries) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_in(TimeDelta::millis(10));
  const size_t pending_after_first_arm = sim.pending_events();
  // Re-arming later must not add heap entries (the lazy path).
  for (int i = 0; i < 100; ++i) t.arm_in(TimeDelta::millis(10 + i));
  EXPECT_EQ(sim.pending_events(), pending_after_first_arm);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::zero() + TimeDelta::millis(109));
}

TEST(Timer, RearmEarlierFiresEarlier) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_in(TimeDelta::millis(100));
  t.arm_in(TimeDelta::millis(10));
  sim.run_until(Time::zero() + TimeDelta::millis(20));
  EXPECT_EQ(fired, 1);
  sim.run();
  EXPECT_EQ(fired, 1);  // the stale entry for t=100ms must not re-fire
}

TEST(Timer, ArmInIfIdleKeepsEarlierDeadline) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_in(TimeDelta::millis(5));
  t.arm_in_if_idle(TimeDelta::millis(50));  // ignored: already armed
  sim.run_until(Time::zero() + TimeDelta::millis(10));
  EXPECT_EQ(fired, 1);
}

TEST(Timer, RearmableFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer* tp = nullptr;
  Timer t(sim, [&] {
    if (++fired < 3) tp->arm_in(TimeDelta::millis(1));
  });
  tp = &t;
  t.arm_in(TimeDelta::millis(1));
  sim.run();
  EXPECT_EQ(fired, 3);
}

}  // namespace
}  // namespace ccas
