// Tier-2 auditor stress grid: one representative cell per reproduction
// bench (bench/bench_*.cc), run at REPRO_SCALE=0.05 with the invariant
// auditor enabled. run_experiment throws on any violation, so completing
// the grid IS the assertion: the whole configuration space the benches
// exercise (both settings, every CCA mix, SACK off, delayed-ACK off,
// undersized buffers) holds the conservation/scoreboard/PRR invariants.
//
// Gated behind CCAS_CHECK so plain `ctest` (tier 1) stays fast; the ASan
// CI job runs it with CCAS_CHECK=1.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/check/audit.h"
#include "src/harness/runner.h"
#include "src/harness/scenario.h"

namespace ccas::check {
namespace {

constexpr double kScale = 0.05;

// Mirrors bench_common.h's make_scenario: CoreScale shrinks with
// REPRO_SCALE (bandwidth + buffer together, per-flow BDP preserved),
// EdgeScale always runs at the paper's parameters. Durations are
// compressed far below the bench defaults — this grid probes invariants,
// not steady-state statistics.
Scenario stress_scenario(Setting setting) {
  Scenario s = Scenario::for_setting(setting);
  if (setting == Setting::kCoreScale) {
    s.net.bottleneck_rate = s.net.bottleneck_rate * kScale;
    s.net.buffer_bytes = std::max<int64_t>(
        static_cast<int64_t>(static_cast<double>(s.net.buffer_bytes) * kScale),
        16 * kDataPacketBytes);
  }
  s.stagger = TimeDelta::millis(200);
  s.warmup = TimeDelta::millis(500);
  s.measure = TimeDelta::seconds(1);
  return s;
}

struct StressCell {
  std::string bench;  // which bench binary this cell represents
  ExperimentSpec spec;
};

ExperimentSpec base_spec(Setting setting) {
  ExperimentSpec spec;
  spec.scenario = stress_scenario(setting);
  spec.seed = 42;
  spec.audit = true;
  return spec;
}

int core_flows(int paper_count) { return scaled_flow_count(paper_count, kScale); }

// One cell per bench, at that bench's characteristic coordinate.
std::vector<StressCell> stress_grid() {
  std::vector<StressCell> grid;
  const TimeDelta rtt20 = TimeDelta::millis(20);
  const TimeDelta rtt100 = TimeDelta::millis(100);

  {  // fig2: Mathis error, NewReno at CoreScale flow counts.
    ExperimentSpec s = base_spec(Setting::kCoreScale);
    s.groups.push_back({"newreno", core_flows(1000), rtt20});
    grid.push_back({"bench_fig2_mathis_error", std::move(s)});
  }
  {  // fig3: loss rate vs halving rate, NewReno at EdgeScale.
    ExperimentSpec s = base_spec(Setting::kEdgeScale);
    s.groups.push_back({"newreno", 10, rtt20});
    grid.push_back({"bench_fig3_loss_halving_ratio", std::move(s)});
  }
  {  // table1: Mathis constant fit, NewReno EdgeScale.
    ExperimentSpec s = base_spec(Setting::kEdgeScale);
    s.groups.push_back({"newreno", 30, rtt20});
    grid.push_back({"bench_table1_mathis_constant", std::move(s)});
  }
  {  // fig4: BBR intra-CCA fairness at CoreScale.
    ExperimentSpec s = base_spec(Setting::kCoreScale);
    s.groups.push_back({"bbr", core_flows(1000), rtt100});
    grid.push_back({"bench_fig4_bbr_intra_jfi", std::move(s)});
  }
  {  // fig5: Cubic vs Reno population split.
    ExperimentSpec s = base_spec(Setting::kCoreScale);
    s.groups.push_back({"cubic", core_flows(500), rtt20});
    s.groups.push_back({"newreno", core_flows(500), rtt20});
    grid.push_back({"bench_fig5_cubic_vs_reno", std::move(s)});
  }
  {  // fig6: one BBR flow against a NewReno population.
    ExperimentSpec s = base_spec(Setting::kCoreScale);
    s.groups.push_back({"bbr", 1, rtt100});
    s.groups.push_back({"newreno", core_flows(1000), rtt100});
    grid.push_back({"bench_fig6_one_bbr_vs_reno", std::move(s)});
  }
  {  // fig7: one BBR flow against a Cubic population.
    ExperimentSpec s = base_spec(Setting::kCoreScale);
    s.groups.push_back({"bbr", 1, rtt100});
    s.groups.push_back({"cubic", core_flows(1000), rtt100});
    grid.push_back({"bench_fig7_one_bbr_vs_cubic", std::move(s)});
  }
  {  // fig8: equal-count BBR vs Cubic.
    ExperimentSpec s = base_spec(Setting::kCoreScale);
    s.groups.push_back({"bbr", core_flows(500), rtt100});
    s.groups.push_back({"cubic", core_flows(500), rtt100});
    grid.push_back({"bench_fig8_bbr_equal_count", std::move(s)});
  }
  {  // finding4: loss-based CCAs stay fair at scale.
    ExperimentSpec s = base_spec(Setting::kCoreScale);
    s.groups.push_back({"cubic", core_flows(1000), rtt100});
    grid.push_back({"bench_finding4_loss_based_jfi", std::move(s)});
  }
  {  // burstiness: drop-process burstiness needs the drop log.
    ExperimentSpec s = base_spec(Setting::kCoreScale);
    s.groups.push_back({"newreno", core_flows(1000), rtt20});
    s.record_drop_log = true;
    grid.push_back({"bench_burstiness", std::move(s)});
  }
  {  // ablation: 0.1x bottleneck buffer.
    ExperimentSpec s = base_spec(Setting::kCoreScale);
    s.scenario.net.buffer_bytes = std::max<int64_t>(
        s.scenario.net.buffer_bytes / 10, 16 * kDataPacketBytes);
    s.groups.push_back({"newreno", core_flows(1000), rtt20});
    grid.push_back({"bench_ablation_buffer", std::move(s)});
  }
  {  // ablation: delayed ACKs off.
    ExperimentSpec s = base_spec(Setting::kEdgeScale);
    s.groups.push_back({"newreno", 10, rtt20});
    s.receiver.delayed_ack = false;
    grid.push_back({"bench_ablation_delack", std::move(s)});
  }
  {  // ablation: SACK off (dupack-only recovery is the auditor's hardest
     // customer: pipe deflation, RFC 5681 forced retransmits).
    ExperimentSpec s = base_spec(Setting::kEdgeScale);
    s.groups.push_back({"newreno", 10, rtt20});
    s.tcp.sack_enabled = false;
    grid.push_back({"bench_ablation_sack", std::move(s)});
  }
  {  // ablation: BBR min_cwnd (default config's floor, mixed RTTs).
    ExperimentSpec s = base_spec(Setting::kEdgeScale);
    s.groups.push_back({"bbr", 5, rtt20});
    s.groups.push_back({"bbr", 5, rtt100});
    grid.push_back({"bench_ablation_bbr_mincwnd", std::move(s)});
  }
  return grid;
}

TEST(check_stress, BenchGridRunsAuditCleanAtSmallScale) {
  if (!kAuditHooksCompiled) {
    GTEST_SKIP() << "audit hooks compiled out (CCAS_CHECK_HOOKS=OFF)";
  }
  if (!check_enabled_from_env()) {
    GTEST_SKIP() << "tier-2 stress grid; set CCAS_CHECK=1 to run";
  }
  for (const StressCell& cell : stress_grid()) {
    SCOPED_TRACE(cell.bench);
    ExperimentResult result;
    // run_experiment throws with the auditor's report on any violation.
    ASSERT_NO_THROW(result = run_experiment(cell.spec)) << cell.bench;
    EXPECT_GT(result.aggregate_goodput_bps, 0.0) << cell.bench;
    EXPECT_GT(result.sim_events, 0u) << cell.bench;
  }
}

// Tier-2 userscale workload stress: a high-rate open-loop mix (short web
// objects, request-response, open-loop video) churning thousands of
// app-limited dynamic flows through the arena/reaper path with the
// auditor on. Under ASan this doubles as a use-after-free check on the
// workload engine's slot recycling and stale-app-timer generation guard.
TEST(check_stress, UserscaleWorkloadRunsAuditCleanAtScale) {
  if (!kAuditHooksCompiled) {
    GTEST_SKIP() << "audit hooks compiled out (CCAS_CHECK_HOOKS=OFF)";
  }
  if (!check_enabled_from_env()) {
    GTEST_SKIP() << "tier-2 stress grid; set CCAS_CHECK=1 to run";
  }
  ExperimentSpec spec = base_spec(Setting::kEdgeScale);
  spec.groups.push_back({"cubic", 2, TimeDelta::millis(20)});
  spec.workload.arrival = ArrivalKind::kPoisson;
  spec.workload.arrivals_per_sec = 2000.0;
  spec.workload.max_concurrent = 4096;
  WorkloadClass web;
  web.name = "web";
  web.weight = 0.8;
  web.cca = "cubic";
  web.rtt = TimeDelta::millis(20);
  web.size.kind = SizeDistKind::kPareto;
  web.size.pareto_alpha = 1.2;
  web.size.min_segments = 2;
  web.size.max_segments = 200;
  web.app = AppModel::kWebObject;
  web.app_burst_segments = 8;
  web.app_gap = TimeDelta::millis(2);
  WorkloadClass rr;
  rr.name = "rr";
  rr.weight = 0.1;
  rr.cca = "newreno";
  rr.rtt = TimeDelta::millis(40);
  rr.size.kind = SizeDistKind::kFixed;
  rr.size.fixed_segments = 24;
  rr.size.min_segments = 24;
  rr.size.max_segments = 24;
  rr.app = AppModel::kRequestResponse;
  rr.app_burst_segments = 4;
  rr.app_gap = TimeDelta::millis(5);
  WorkloadClass video;
  video.name = "video";
  video.weight = 0.1;
  video.cca = "bbr";
  video.rtt = TimeDelta::millis(30);
  video.size.kind = SizeDistKind::kFixed;
  video.size.fixed_segments = 64;
  video.size.min_segments = 64;
  video.size.max_segments = 64;
  video.app = AppModel::kVideoChunk;
  video.app_burst_segments = 16;
  video.app_gap = TimeDelta::millis(20);
  spec.workload.classes = {web, rr, video};
  // Loss + reordering leave retransmission timers and stray duplicates
  // behind departing flows: the reap-grace safety argument under fire.
  spec.scenario.net.impairments.loss = 0.005;
  spec.scenario.net.impairments.reorder = 0.005;
  spec.scenario.net.impairments.reorder_delay = TimeDelta::millis(1);

  ExperimentResult result;
  ASSERT_NO_THROW(result = run_experiment(spec));
  uint64_t arrivals = 0;
  uint64_t completed = 0;
  for (const WorkloadClassResult& c : result.workload_classes) {
    arrivals += c.arrivals;
    completed += c.completed;
  }
  EXPECT_GT(arrivals, 2000u);
  // The mix deliberately overloads the 100 Mbps link (open-loop overload is
  // the stressful regime); a third still completes within the horizon.
  EXPECT_GT(completed, arrivals / 3);
  EXPECT_GT(result.workload_goodput_bps, 0.0);
}

}  // namespace
}  // namespace ccas::check
