// Property tests for the qdisc subsystem: 200 randomized configurations
// driven with randomized arrival processes, each checked against the
// invariants every discipline must uphold — packet conservation, bounded
// sojourn for FIFO schedulers, CE marks only on ECT packets, CoDel
// reacting to a standing queue, and byte-identical same-seed replay.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "src/net/link.h"
#include "src/net/qdisc/qdisc.h"
#include "src/util/rng.h"

namespace ccas {
namespace {

struct Arrival {
  Time at;
  uint32_t flow;
  uint64_t seq;
  bool ect;
};

struct RunOutput {
  QueueStats stats;
  std::vector<uint64_t> per_flow_drops;
  std::vector<uint64_t> per_flow_marks;
  std::vector<DropRecord> drop_log;
  // Egress sequence with timestamps and final ECN bits.
  std::vector<std::tuple<int64_t, uint32_t, uint64_t, uint8_t>> egress;
  size_t resident = 0;
  int64_t resident_bytes = 0;
};

class RecordingSink : public PacketSink {
 public:
  explicit RecordingSink(Simulator& sim, RunOutput& out) : sim_(sim), out_(out) {}
  void accept(Packet&& pkt) override {
    out_.egress.emplace_back(sim_.now().ns(), pkt.flow_id, pkt.seq, pkt.ecn);
  }

 private:
  Simulator& sim_;
  RunOutput& out_;
};

// Draws a random-but-valid config. Mirrors the CLI surface: every kind,
// ECN only where validate() allows it, knobs inside their legal ranges.
QdiscConfig random_config(Rng& rng) {
  QdiscConfig c;
  switch (rng.next_below(5)) {
    case 0: c.kind = QdiscKind::kDropTail; break;
    case 1: c.kind = QdiscKind::kCoDel; break;
    case 2: c.kind = QdiscKind::kFqCoDel; break;
    case 3: c.kind = QdiscKind::kPie; break;
    default: c.kind = QdiscKind::kRed; break;
  }
  if (c.enabled()) c.ecn = rng.next_below(2) == 0;
  c.seed = rng.next_u64() | 1;  // never 0: 0 means "derive from cell seed"
  const int64_t target_ms = 1 + static_cast<int64_t>(rng.next_below(10));
  c.codel_target = TimeDelta::millis(target_ms);
  c.codel_interval = TimeDelta::millis(target_ms * (2 + static_cast<int64_t>(rng.next_below(40))));
  c.fq_flows = 1u << (1 + rng.next_below(7));  // 2..128 buckets
  c.fq_quantum = 500 + static_cast<int64_t>(rng.next_below(3000));
  c.pie_target = TimeDelta::millis(1 + static_cast<int64_t>(rng.next_below(30)));
  c.pie_tupdate = TimeDelta::millis(1 + static_cast<int64_t>(rng.next_below(30)));
  c.red_wq = rng.next_range(0.001, 0.05);
  c.red_max_p = rng.next_range(0.02, 0.5);
  c.red_gentle = rng.next_below(2) == 0;
  if (rng.next_below(2) == 0) {
    c.red_min_bytes = 2 * kDataPacketBytes +
                      static_cast<int64_t>(rng.next_below(10 * kDataPacketBytes));
    c.red_max_bytes = c.red_min_bytes * 3;
  }
  return c;
}

struct Workload {
  DataRate rate = DataRate::mbps(10);
  int64_t buffer_bytes = 0;
  uint32_t flows = 1;
  std::vector<Arrival> arrivals;
};

// A randomized on/off arrival process: mean inter-arrival between 0.3x and
// 2x the service time, so some draws overload the link and some do not.
Workload random_workload(Rng& rng, const QdiscConfig& config) {
  Workload w;
  w.buffer_bytes = (8 + static_cast<int64_t>(rng.next_below(120))) * kDataPacketBytes;
  if (config.red_max_bytes > 0 && w.buffer_bytes < config.red_max_bytes) {
    w.buffer_bytes = config.red_max_bytes + 2 * kDataPacketBytes;
  }
  w.flows = 1 + static_cast<uint32_t>(rng.next_below(4));
  const double service_us =
      static_cast<double>(w.rate.transfer_time(kDataPacketBytes).ns()) / 1e3;
  const double mean_gap_us = service_us * rng.next_range(0.3, 2.0);
  const bool ect_all = rng.next_below(2) == 0;
  int64_t t_ns = 0;
  const int64_t horizon_ns = TimeDelta::millis(400).ns();
  uint64_t seq = 0;
  while (t_ns < horizon_ns) {
    // Exponential-ish gaps via a two-point mixture keeps this integer-exact.
    const double u = rng.next_double();
    t_ns += static_cast<int64_t>(mean_gap_us * 1e3 * (0.2 + 1.6 * u)) + 1;
    const bool ect = ect_all || rng.next_below(4) != 0;
    w.arrivals.push_back({Time::zero() + TimeDelta::nanos(t_ns),
                          static_cast<uint32_t>(seq % w.flows), seq, ect});
    ++seq;
  }
  return w;
}

RunOutput run_workload(const QdiscConfig& config, const Workload& w) {
  RunOutput out;
  Simulator sim;
  RecordingSink sink(sim, out);
  std::unique_ptr<QueueDisc> queue = make_qdisc(sim, config, w.buffer_bytes);
  Link link(sim, w.rate, &sink);
  queue->set_downstream(&link);
  link.set_source(queue.get());
  queue->reserve_flows(w.flows);
  for (const Arrival& a : w.arrivals) {
    sim.schedule_fn_at(a.at, [&queue, a] {
      Packet pkt = Packet::make_data(a.flow, 0, a.seq, false);
      if (a.ect) pkt.ecn = kEcnEct;
      queue->accept(std::move(pkt));
    });
  }
  // Stop while some runs still have packets resident — conservation must
  // hold mid-flight, not only after a full drain. PIE's recurring tupdate
  // timer also means run() would never return, so run_until is mandatory.
  sim.run_until(Time::zero() + TimeDelta::millis(450));
  out.stats = queue->stats();
  out.per_flow_drops = queue->per_flow_drops();
  out.per_flow_marks = queue->per_flow_marks();
  out.drop_log = queue->drop_log();
  out.resident = queue->queued_packets();
  out.resident_bytes = queue->queued_bytes();
  return out;
}

std::string describe(const QdiscConfig& c, uint64_t case_seed) {
  std::ostringstream os;
  os << "case seed " << case_seed << " kind " << qdisc_kind_name(c.kind)
     << (c.ecn ? " +ecn" : "") << " qdisc seed " << c.seed;
  return os.str();
}

TEST(QdiscProperty, RandomConfigsUpholdCoreInvariants) {
  Rng rng(0xC0FFEE);
  for (int iter = 0; iter < 200; ++iter) {
    const uint64_t case_seed = rng.next_u64();
    Rng case_rng(case_seed);
    const QdiscConfig config = random_config(case_rng);
    ASSERT_NO_THROW(config.validate()) << describe(config, case_seed);
    const Workload w = random_workload(case_rng, config);
    const RunOutput out = run_workload(config, w);
    SCOPED_TRACE(describe(config, case_seed));

    // --- Conservation: every accepted packet is delivered, head-dropped,
    // or still resident; tail drops never entered.
    EXPECT_EQ(out.stats.enqueued_packets,
              out.stats.dequeued_packets + out.stats.head_dropped_packets +
                  out.resident);
    // The link may hold one dequeued packet mid-serialization at stop time.
    EXPECT_GE(out.stats.dequeued_packets, out.egress.size());
    EXPECT_LE(out.stats.dequeued_packets, out.egress.size() + 1);
    // Per-flow drop counters add up to the total (both drop classes land
    // in per_flow_drops) and to the drop log.
    uint64_t flow_drops = 0;
    uint64_t flow_marks = 0;
    for (uint32_t fl = 0; fl < w.flows; ++fl) {
      flow_drops += out.per_flow_drops[fl];
      flow_marks += out.per_flow_marks[fl];
    }
    EXPECT_EQ(flow_drops, out.stats.dropped_packets + out.stats.head_dropped_packets);
    EXPECT_EQ(flow_marks, out.stats.marked_packets);
    EXPECT_EQ(out.drop_log.size(),
              out.stats.dropped_packets + out.stats.head_dropped_packets);

    // --- Sojourn bound: no packet waits longer than the time to drain a
    // full buffer plus the packet in transmission.
    if (out.stats.sojourn_samples > 0) {
      const double drain_sec =
          static_cast<double>(
              w.rate.transfer_time(w.buffer_bytes + kDataPacketBytes).ns()) /
          1e9;
      // FQ-CoDel's DRR can hold a packet for extra quantum rounds while
      // other buckets drain; everything else is FIFO-tight.
      const double slack = config.kind == QdiscKind::kFqCoDel ? 2.0 : 1.001;
      EXPECT_LE(static_cast<double>(out.stats.max_sojourn_ns) / 1e9,
                drain_sec * slack);
    }

    // --- Marks only when ECT, and never without ECN enabled.
    if (!config.ecn) {
      EXPECT_EQ(out.stats.marked_packets, 0u);
    }
    uint64_t ce_seen = 0;
    for (const auto& [ns, flow, seq, ecn] : out.egress) {
      if ((ecn & kEcnCe) != 0) {
        ++ce_seen;
        EXPECT_NE(ecn & kEcnEct, 0u) << "CE on a non-ECT packet";
      }
    }
    // Every delivered CE was counted as a mark. The converse is bounded:
    // RED/PIE mark at enqueue, so a marked packet may still be resident in
    // the queue (or mid-serialization on the link) at stop time.
    EXPECT_LE(ce_seen, out.stats.marked_packets);
    EXPECT_LE(out.stats.marked_packets - ce_seen, out.resident + 1);

    // --- Same seed, same workload: byte-identical replay.
    const RunOutput replay = run_workload(config, w);
    EXPECT_EQ(out.egress, replay.egress);
    EXPECT_EQ(out.per_flow_drops, replay.per_flow_drops);
    EXPECT_EQ(out.per_flow_marks, replay.per_flow_marks);
    EXPECT_EQ(out.stats.enqueued_packets, replay.stats.enqueued_packets);
    EXPECT_EQ(out.stats.dropped_packets, replay.stats.dropped_packets);
    EXPECT_EQ(out.stats.head_dropped_packets, replay.stats.head_dropped_packets);
    EXPECT_EQ(out.stats.marked_packets, replay.stats.marked_packets);
    EXPECT_EQ(out.stats.sojourn_ns_sum, replay.stats.sojourn_ns_sum);
    EXPECT_EQ(out.resident, replay.resident);
    EXPECT_EQ(out.resident_bytes, replay.resident_bytes);
    ASSERT_EQ(out.drop_log.size(), replay.drop_log.size());
    for (size_t i = 0; i < out.drop_log.size(); ++i) {
      EXPECT_EQ(out.drop_log[i].at, replay.drop_log[i].at);
      EXPECT_EQ(out.drop_log[i].flow_id, replay.drop_log[i].flow_id);
    }
  }
}

TEST(QdiscProperty, CoDelFamilyReactsToStandingQueue) {
  // Deliberately saturating load against CoDel and FQ-CoDel with and
  // without ECN: a standing queue above target must provoke head drops
  // (or marks) — a CoDel that never enters the dropping state is broken.
  Rng rng(0xBADC0DE);
  for (int iter = 0; iter < 12; ++iter) {
    QdiscConfig config;
    config.kind = iter % 2 == 0 ? QdiscKind::kCoDel : QdiscKind::kFqCoDel;
    config.ecn = (iter / 2) % 2 == 0;
    config.seed = rng.next_u64() | 1;
    Workload w;
    w.buffer_bytes = 300 * kDataPacketBytes;
    w.flows = 2;
    // 2x overload: packets every 600 us into a 1.2 ms service time.
    uint64_t seq = 0;
    for (int64_t t_us = 0; t_us < 1'500'000; t_us += 600, ++seq) {
      w.arrivals.push_back({Time::zero() + TimeDelta::micros(t_us),
                            static_cast<uint32_t>(seq % w.flows), seq, true});
    }
    const RunOutput out = run_workload(config, w);
    SCOPED_TRACE(describe(config, iter));
    EXPECT_GT(out.stats.head_dropped_packets + out.stats.marked_packets, 0u);
    if (config.ecn) {
      EXPECT_GT(out.stats.marked_packets, 0u);
      // CoDel's control-law drops all become marks under ECN. FQ-CoDel may
      // still head-drop: its overflow policy evicts from the fattest flow,
      // and an overflowing buffer cannot be relieved by marking.
      if (config.kind == QdiscKind::kCoDel) {
        EXPECT_EQ(out.stats.head_dropped_packets, 0u);
      }
    } else {
      EXPECT_EQ(out.stats.marked_packets, 0u);
    }
  }
}

}  // namespace
}  // namespace ccas
