// Property tests for the ImpairedLink stage (ISSUE 4 satellites):
//
//   * 200 random impairment configs: every injected packet is exactly
//     dropped, duplicated, or delivered (conservation, cross-checked
//     against the invariant auditor's counters), reorder/jitter
//     displacement stays within the configured bound, and two runs with
//     the same seed produce identical delivery sequences.
//   * Differential: an inert stage forced into the path (force_stage)
//     produces bit-identical golden digests to the unwrapped wiring for
//     every pre-impairment golden cell.
//   * Spec-hash gating: impairment fields only enter the canonical spec
//     encoding when the stage is active; force_stage never does.
#include "src/net/impairment.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/check/audit.h"
#include "src/check/golden.h"
#include "src/harness/runner.h"
#include "src/net/link.h"
#include "src/net/queue.h"
#include "src/net/topology.h"
#include "src/sweep/spec_hash.h"
#include "src/util/rng.h"

namespace ccas {
namespace {

Packet data_packet(uint32_t flow, uint64_t seq) {
  return Packet::make_data(flow, DumbbellTopology::kToReceivers, seq, false);
}

// Sink that reports deliveries to the auditor, mirroring what a TCP
// endpoint does, so the auditor's global conservation check applies.
class AuditedCollector : public PacketSink {
 public:
  explicit AuditedCollector(Simulator& sim) : sim_(sim) {}
  void accept(Packet&& pkt) override {
    if (auto* a = sim_.auditor()) a->on_packet_delivered(pkt);
    deliveries.emplace_back(pkt.seq, sim_.now().ns());
  }
  std::vector<std::pair<uint64_t, int64_t>> deliveries;  // (seq, arrival ns)

 private:
  Simulator& sim_;
};

ImpairmentConfig random_config(Rng& meta) {
  ImpairmentConfig cfg;
  cfg.loss = meta.next_double() * 0.3;
  cfg.duplicate = meta.next_double() * 0.2;
  cfg.reorder = meta.next_double() * 0.3;
  cfg.reorder_delay = TimeDelta::micros(100 + static_cast<int64_t>(
                                                  meta.next_double() * 1900.0));
  cfg.jitter = TimeDelta::nanos(static_cast<int64_t>(meta.next_double() * 500'000.0));
  cfg.jitter_dist = meta.next_double() < 0.5 ? ImpairmentConfig::JitterDist::kUniform
                                             : ImpairmentConfig::JitterDist::kNormal;
  if (meta.next_double() < 0.5) {
    cfg.ge.p_good_to_bad = 0.001 + meta.next_double() * 0.1;
    cfg.ge.p_bad_to_good = 0.05 + meta.next_double() * 0.9;
    cfg.ge.loss_bad = 0.2 + meta.next_double() * 0.8;
    cfg.ge.loss_good = meta.next_double() * 0.05;
  }
  if (meta.next_double() < 0.3) {
    // One down/up flap inside the 10 ms injection window.
    const int64_t down_us = 500 + static_cast<int64_t>(meta.next_double() * 4000.0);
    const int64_t up_us = down_us + 200 +
                          static_cast<int64_t>(meta.next_double() * 3000.0);
    LinkFault d;
    d.at = Time::zero() + TimeDelta::micros(down_us);
    d.kind = LinkFault::Kind::kDown;
    LinkFault u;
    u.at = Time::zero() + TimeDelta::micros(up_us);
    u.kind = LinkFault::Kind::kUp;
    cfg.faults = {d, u};
  }
  cfg.seed = meta.next_u64() | 1;  // nonzero: no runner to derive one
  return cfg;
}

struct RunOutcome {
  std::vector<std::pair<uint64_t, int64_t>> deliveries;
  ImpairmentStats stats;
  uint64_t audit_violations = 0;
};

constexpr int kPacketsPerRun = 200;
constexpr int64_t kInjectSpacingUs = 50;

RunOutcome run_once(const ImpairmentConfig& cfg) {
  Simulator sim;
  check::InvariantAuditor auditor(sim);
  AuditedCollector sink(sim);
  ImpairedLink impaired(sim, cfg, &sink);
  // With CCAS_CHECK_HOOKS=OFF the stage's hook calls compile away, so the
  // endpoint-side bookkeeping must stay off too or conservation would
  // see injections with no matching drops/deliveries.
  if (check::kAuditHooksCompiled) {
    auditor.watch_impairment(impaired);
    auditor.register_holder("impaired-link", [&](int64_t& pkts, int64_t& bytes) {
      pkts += static_cast<int64_t>(impaired.in_transit());
      bytes += impaired.in_transit_bytes();
    });
  }
  for (int i = 0; i < kPacketsPerRun; ++i) {
    const Time at = Time::zero() + TimeDelta::micros(i * kInjectSpacingUs);
    sim.schedule_fn_at(at, [&, i] {
      Packet p = data_packet(0, static_cast<uint64_t>(i));
      if (check::kAuditHooksCompiled) auditor.on_packet_injected(p);
      impaired.accept(std::move(p));
    });
  }
  sim.run();
  EXPECT_EQ(impaired.in_transit(), 0u) << "delayed packets left after drain";
  EXPECT_EQ(impaired.in_transit_bytes(), 0);
  auditor.run_checks(sim.now());
  RunOutcome out;
  out.deliveries = sink.deliveries;
  out.stats = impaired.stats();
  out.audit_violations = auditor.total_violations();
  return out;
}

TEST(ImpairmentProperty, RandomConfigsConserveAndReplayExactly) {
  Rng meta(0xfeedface);
  int with_deliveries = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const ImpairmentConfig cfg = random_config(meta);
    ASSERT_NO_THROW(cfg.validate()) << "trial " << trial;
    const RunOutcome a = run_once(cfg);
    SCOPED_TRACE(testing::Message()
                 << "trial " << trial << " loss=" << cfg.loss << " dup="
                 << cfg.duplicate << " reorder=" << cfg.reorder
                 << " ge=" << cfg.ge.enabled() << " faults=" << cfg.faults.size());

    // Exact conservation: every accepted packet (plus every duplicate
    // copy) was delivered or dropped; nothing vanished, nothing was
    // minted. Cross-checked against the auditor (zero violations covers
    // its global conservation + stage/hook reconciliation checks).
    EXPECT_EQ(a.stats.processed, static_cast<uint64_t>(kPacketsPerRun));
    EXPECT_EQ(a.stats.delivered + a.stats.dropped_total(),
              a.stats.processed + a.stats.duplicated);
    EXPECT_EQ(a.deliveries.size(), a.stats.delivered);
    EXPECT_EQ(a.audit_violations, 0u);

    // Displacement bound: a delivered packet leaves the stage at most
    // jitter + reorder_delay after it was injected (draws are over
    // half-open intervals, so the bound itself is never exceeded).
    const int64_t max_extra_ns = cfg.jitter.ns() + cfg.reorder_delay.ns();
    for (const auto& [seq, at_ns] : a.deliveries) {
      const int64_t injected_ns =
          static_cast<int64_t>(seq) * kInjectSpacingUs * 1000;
      EXPECT_GE(at_ns, injected_ns);
      EXPECT_LE(at_ns - injected_ns, max_extra_ns)
          << "seq " << seq << " displaced beyond the configured bound";
    }

    // Bit-identical replay: same config + seed => same delivery sequence
    // (same seqs, same order, same arrival times) and same counters.
    const RunOutcome b = run_once(cfg);
    EXPECT_EQ(a.deliveries, b.deliveries);
    EXPECT_EQ(a.stats.dropped_total(), b.stats.dropped_total());
    EXPECT_EQ(a.stats.duplicated, b.stats.duplicated);
    EXPECT_EQ(a.stats.reordered, b.stats.reordered);
    if (!a.deliveries.empty()) ++with_deliveries;
  }
  // Sanity: the generator must not have degenerated into all-drop configs.
  EXPECT_GT(with_deliveries, 150);
}

TEST(ImpairmentProperty, LinkDownFaultDropsEverythingInWindow) {
  ImpairmentConfig cfg;
  LinkFault down;
  down.at = Time::zero() + TimeDelta::millis(2);
  down.kind = LinkFault::Kind::kDown;
  LinkFault up;
  up.at = Time::zero() + TimeDelta::millis(5);
  up.kind = LinkFault::Kind::kUp;
  cfg.faults = {down, up};
  cfg.seed = 7;
  const RunOutcome out = run_once(cfg);
  // Packets injected every 50 us for 10 ms: those in [2 ms, 5 ms) die.
  EXPECT_EQ(out.stats.dropped_down, 60u);
  EXPECT_EQ(out.stats.delivered, static_cast<uint64_t>(kPacketsPerRun) - 60u);
  EXPECT_EQ(out.audit_violations, 0u);
  for (const auto& [seq, at_ns] : out.deliveries) {
    const int64_t injected_ns = static_cast<int64_t>(seq) * kInjectSpacingUs * 1000;
    EXPECT_TRUE(injected_ns < 2'000'000 || injected_ns >= 5'000'000)
        << "seq " << seq << " delivered during the down window";
  }
}

TEST(ImpairmentProperty, RateAndBufferFaultsRetargetLinkAndQueue) {
  Simulator sim;
  ImpairmentConfig cfg;
  LinkFault rate;
  rate.at = Time::zero() + TimeDelta::millis(1);
  rate.kind = LinkFault::Kind::kRate;
  rate.rate = DataRate::mbps(10);
  LinkFault buf;
  buf.at = Time::zero() + TimeDelta::millis(2);
  buf.kind = LinkFault::Kind::kBuffer;
  buf.buffer_bytes = 2 * kDataPacketBytes;
  cfg.faults = {rate, buf};
  cfg.seed = 7;

  AuditedCollector sink(sim);
  ImpairedLink impaired(sim, cfg, &sink);
  DropTailQueue queue(sim, 1'000'000);
  Link link(sim, DataRate::mbps(100), &impaired);
  queue.set_downstream(&link);
  link.set_source(&queue);
  impaired.attach_fault_targets(&link, &queue);

  sim.run_until(Time::zero() + TimeDelta::millis(3));
  EXPECT_EQ(link.rate(), DataRate::mbps(10));
  EXPECT_EQ(queue.capacity_bytes(), 2 * kDataPacketBytes);
}

TEST(ImpairmentProperty, ValidateRejectsBadConfigs) {
  {
    ImpairmentConfig cfg;
    cfg.loss = 1.5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ImpairmentConfig cfg;
    cfg.reorder = 0.1;
    cfg.reorder_delay = TimeDelta::zero();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ImpairmentConfig cfg;
    cfg.ge.p_good_to_bad = 0.1;  // bad state unreachable-from
    cfg.ge.p_bad_to_good = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ImpairmentConfig cfg;
    LinkFault a;
    a.at = Time::zero() + TimeDelta::millis(5);
    LinkFault b;
    b.at = Time::zero() + TimeDelta::millis(5);  // tie: not strictly increasing
    cfg.faults = {a, b};
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ImpairmentConfig cfg;
    LinkFault f;
    f.kind = LinkFault::Kind::kRate;
    f.rate = DataRate::zero();
    cfg.faults = {f};
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
}

TEST(ImpairmentProperty, SeedDerivationIsDeterministicAndSpread) {
  EXPECT_EQ(derive_impairment_seed(42), derive_impairment_seed(42));
  EXPECT_NE(derive_impairment_seed(42), derive_impairment_seed(43));
  // The derived stream must not collide with the experiment seed itself
  // (which seeds the master Rng whose fork order the goldens pin).
  EXPECT_NE(derive_impairment_seed(42), 42u);
}

// ------------------------------------------------------- differential ----

// The "impairment layer is free when off" claim: forcing an inert stage
// into the path must reproduce every pre-impairment golden cell's digest
// bit-for-bit. An inert stage draws no randomness and forwards
// synchronously, so the event stream — and hence the digest — is
// unchanged.
TEST(ImpairmentDifferential, InertStageMatchesPlainLinkOnGoldenGrid) {
  int compared = 0;
  for (const check::GoldenCell& cell : check::golden_grid()) {
    if (cell.spec.scenario.net.impairments.enabled()) continue;  // impaired cells
    const ExperimentResult plain = run_experiment(cell.spec);
    ExperimentSpec forced = cell.spec;
    forced.scenario.net.impairments.force_stage = true;
    const ExperimentResult staged = run_experiment(forced);
    // Compare digests over the *same* spec encoding (force_stage is not
    // hashed, so both encode identically — the digest difference, if any,
    // can only come from the serialized result).
    EXPECT_EQ(check::golden_digest(cell.spec, plain),
              check::golden_digest(cell.spec, staged))
        << "cell " << cell.name << ": inert impairment stage changed the trace";
    EXPECT_EQ(plain.sim_events, staged.sim_events) << "cell " << cell.name;
    ++compared;
  }
  EXPECT_GE(compared, 8) << "expected the 8 pre-impairment golden cells";
}

TEST(ImpairmentSpecHash, FieldsHashedOnlyWhenEnabled) {
  ExperimentSpec base;
  base.groups = {{"cubic", 1, TimeDelta::millis(20)}};
  const uint64_t key_default = sweep::spec_cache_key(base, "test-salt");

  // force_stage is observational (like spec.audit): same key.
  ExperimentSpec forced = base;
  forced.scenario.net.impairments.force_stage = true;
  EXPECT_EQ(sweep::spec_cache_key(forced, "test-salt"), key_default);

  // Any active impairment must change the key.
  ExperimentSpec lossy = base;
  lossy.scenario.net.impairments.loss = 0.01;
  EXPECT_NE(sweep::spec_cache_key(lossy, "test-salt"), key_default);

  ExperimentSpec faulted = base;
  LinkFault f;
  f.at = Time::zero() + TimeDelta::seconds(1);
  f.kind = LinkFault::Kind::kDown;
  faulted.scenario.net.impairments.faults = {f};
  EXPECT_NE(sweep::spec_cache_key(faulted, "test-salt"), key_default);
  EXPECT_NE(sweep::spec_cache_key(faulted, "test-salt"),
            sweep::spec_cache_key(lossy, "test-salt"));

  // And distinct impairment values must hash apart.
  ExperimentSpec lossier = lossy;
  lossier.scenario.net.impairments.loss = 0.02;
  EXPECT_NE(sweep::spec_cache_key(lossier, "test-salt"),
            sweep::spec_cache_key(lossy, "test-salt"));
}

}  // namespace
}  // namespace ccas
