// BBR state-machine unit tests, driven by synthetic ACK events (one ACK ==
// one packet-timed round, unless stated otherwise).
#include "src/cca/bbr.h"

#include <gtest/gtest.h>

#include "src/net/packet.h"

namespace ccas {
namespace {

struct BbrDriver {
  explicit BbrDriver(BbrConfig cfg = {}) : rng(1), bbr(cfg, rng) {}

  // Feeds one ACK that (a) carries a valid rate sample of `rate`, (b) is a
  // round boundary, and (c) advances time by `rtt`.
  void round(DataRate rate, TimeDelta rtt, uint64_t inflight, uint64_t acked = 10,
             uint64_t lost = 0, bool in_recovery = false) {
    now = now + rtt;
    AckEvent ev;
    ev.now = now;
    ev.newly_acked = acked;
    ev.newly_lost = lost;
    ev.inflight = inflight;
    ev.rate.delivery_rate = rate;
    ev.rate.prior_delivered = delivered;  // >= next_round_delivered => round start
    ev.rate.interval = rtt;
    delivered += acked;
    ev.delivered_total = delivered;
    ev.rtt_sample = rtt;
    ev.min_rtt = rtt;
    ev.in_recovery = in_recovery;
    bbr.on_ack(ev);
  }

  Rng rng;
  Bbr bbr;
  Time now = Time::zero();
  uint64_t delivered = 0;
};

uint64_t bdp_segments(DataRate rate, TimeDelta rtt) {
  return static_cast<uint64_t>(static_cast<double>(rate.bits_per_sec()) / 8.0 *
                               rtt.sec() / static_cast<double>(kMssBytes));
}

TEST(Bbr, StartsInStartupWithHighGain) {
  BbrDriver d;
  EXPECT_EQ(d.bbr.mode(), Bbr::Mode::kStartup);
  EXPECT_EQ(d.bbr.cwnd(), 10u);
  EXPECT_NEAR(d.bbr.pacing_gain(), 2.885, 1e-9);
  EXPECT_EQ(d.bbr.name(), "bbr");
}

TEST(Bbr, TracksBandwidthAndMinRtt) {
  BbrDriver d;
  d.round(DataRate::mbps(50), TimeDelta::millis(20), 100);
  EXPECT_EQ(d.bbr.bottleneck_bw(), DataRate::mbps(50));
  EXPECT_EQ(d.bbr.min_rtt(), TimeDelta::millis(20));
  d.round(DataRate::mbps(80), TimeDelta::millis(30), 100);
  EXPECT_EQ(d.bbr.bottleneck_bw(), DataRate::mbps(80));  // windowed max
  EXPECT_EQ(d.bbr.min_rtt(), TimeDelta::millis(20));     // windowed min
}

TEST(Bbr, StartupExitsAfterThreeFlatRounds) {
  BbrDriver d;
  const TimeDelta rtt = TimeDelta::millis(20);
  // Growing bandwidth: stays in startup.
  d.round(DataRate::mbps(10), rtt, 50);
  d.round(DataRate::mbps(20), rtt, 100);
  d.round(DataRate::mbps(40), rtt, 200);
  EXPECT_EQ(d.bbr.mode(), Bbr::Mode::kStartup);
  EXPECT_FALSE(d.bbr.filled_pipe());
  // Plateau: three rounds without 25% growth => pipe is full => DRAIN.
  d.round(DataRate::mbps(42), rtt, 400);
  d.round(DataRate::mbps(41), rtt, 400);
  d.round(DataRate::mbps(42), rtt, 400);
  EXPECT_TRUE(d.bbr.filled_pipe());
  EXPECT_EQ(d.bbr.mode(), Bbr::Mode::kDrain);
  EXPECT_NEAR(d.bbr.pacing_gain(), 1.0 / 2.885, 1e-9);
}

TEST(Bbr, DrainExitsToProbeBwWhenInflightReachesBdp) {
  BbrDriver d;
  const TimeDelta rtt = TimeDelta::millis(20);
  const DataRate bw = DataRate::mbps(40);
  d.round(DataRate::mbps(10), rtt, 50);
  d.round(DataRate::mbps(20), rtt, 100);
  d.round(bw, rtt, 200);
  d.round(bw, rtt, 400);
  d.round(bw, rtt, 400);
  d.round(bw, rtt, 400);
  ASSERT_EQ(d.bbr.mode(), Bbr::Mode::kDrain);
  // Still above 1 BDP: stay in drain.
  d.round(bw, rtt, 3 * bdp_segments(bw, rtt));
  EXPECT_EQ(d.bbr.mode(), Bbr::Mode::kDrain);
  // Inflight drained to <= BDP: ProbeBW.
  d.round(bw, rtt, bdp_segments(bw, rtt) - 1);
  EXPECT_EQ(d.bbr.mode(), Bbr::Mode::kProbeBw);
}

// Drives a fresh BBR to steady ProbeBW at the given bw/rtt.
void reach_probe_bw(BbrDriver& d, DataRate bw, TimeDelta rtt) {
  d.round(bw * 0.25, rtt, 50);
  d.round(bw * 0.5, rtt, 100);
  d.round(bw, rtt, 200);
  d.round(bw, rtt, 400);
  d.round(bw, rtt, 400);
  d.round(bw, rtt, 400);
  d.round(bw, rtt, bdp_segments(bw, rtt) - 1);
  ASSERT_EQ(d.bbr.mode(), Bbr::Mode::kProbeBw);
}

TEST(Bbr, ProbeBwCyclesThroughGains) {
  BbrDriver d;
  const DataRate bw = DataRate::mbps(40);
  const TimeDelta rtt = TimeDelta::millis(20);
  reach_probe_bw(d, bw, rtt);
  // Collect the gains over a few cycles: must include 1.25, 0.75 and 1.0.
  bool saw_high = false;
  bool saw_low = false;
  bool saw_unit = false;
  for (int i = 0; i < 32; ++i) {
    const double g = d.bbr.pacing_gain();
    saw_high |= g > 1.2;
    saw_low |= g < 0.8;
    saw_unit |= g > 0.99 && g < 1.01;
    // Full-length phase passes (time > min_rtt), plus inflight conditions.
    d.round(bw, rtt + TimeDelta::millis(1), bdp_segments(bw, rtt) + 60, 10,
            g > 1.0 ? 1 : 0);
  }
  EXPECT_TRUE(saw_high);
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_unit);
}

TEST(Bbr, CwndTargetsTwoBdpInProbeBw) {
  BbrDriver d;
  const DataRate bw = DataRate::mbps(40);
  const TimeDelta rtt = TimeDelta::millis(20);
  reach_probe_bw(d, bw, rtt);
  // Give it plenty of ACKs to grow cwnd to the target.
  for (int i = 0; i < 50; ++i) d.round(bw, rtt, bdp_segments(bw, rtt), 50);
  const uint64_t bdp = bdp_segments(bw, rtt);
  EXPECT_NEAR(static_cast<double>(d.bbr.cwnd()), 2.0 * static_cast<double>(bdp),
              static_cast<double>(bdp) * 0.15);
}

TEST(Bbr, PacingRateFollowsGainTimesBw) {
  BbrDriver d;
  const DataRate bw = DataRate::mbps(40);
  const TimeDelta rtt = TimeDelta::millis(20);
  reach_probe_bw(d, bw, rtt);
  const double gain = d.bbr.pacing_gain();
  EXPECT_NEAR(d.bbr.pacing_rate().mbps_f(), gain * 40.0 * 0.99, 1.0);
}

TEST(Bbr, ProbeRttAfterTenSecondsClampsCwndToFloor) {
  BbrDriver d;
  const DataRate bw = DataRate::mbps(40);
  // Long rounds so 10 s pass quickly; RTT never decreases, so the min-RTT
  // estimate goes stale.
  const TimeDelta rtt = TimeDelta::millis(500);
  reach_probe_bw(d, bw, rtt);
  for (int i = 0; i < 25 && d.bbr.mode() != Bbr::Mode::kProbeRtt; ++i) {
    d.round(bw, rtt, bdp_segments(bw, rtt));
  }
  ASSERT_EQ(d.bbr.mode(), Bbr::Mode::kProbeRtt);
  d.round(bw, rtt, 100);
  EXPECT_LE(d.bbr.cwnd(), 4u);
}

TEST(Bbr, ProbeRttExitsAfterDurationAndRound) {
  BbrDriver d;
  const DataRate bw = DataRate::mbps(40);
  const TimeDelta rtt = TimeDelta::millis(500);
  reach_probe_bw(d, bw, rtt);
  for (int i = 0; i < 25 && d.bbr.mode() != Bbr::Mode::kProbeRtt; ++i) {
    d.round(bw, rtt, bdp_segments(bw, rtt));
  }
  ASSERT_EQ(d.bbr.mode(), Bbr::Mode::kProbeRtt);
  // Reach the cwnd floor, then hold for 200 ms + 1 round.
  d.round(bw, rtt, 4);  // inflight at floor: arms the done-stamp
  d.round(bw, rtt, 4);  // round passes (rtt 500 ms > 200 ms)
  d.round(bw, rtt, 4);
  EXPECT_EQ(d.bbr.mode(), Bbr::Mode::kProbeBw);  // pipe was filled before
}

TEST(Bbr, MinCwndFloorIsConfigurable) {
  BbrConfig cfg;
  cfg.min_cwnd = 2;
  BbrDriver d(cfg);
  const DataRate bw = DataRate::kbps(100);  // tiny: BDP < 1 segment
  const TimeDelta rtt = TimeDelta::millis(10);
  for (int i = 0; i < 10; ++i) d.round(bw, rtt, 2);
  EXPECT_GE(d.bbr.cwnd(), 2u);
}

TEST(Bbr, RecoveryPacketConservationThenRestore) {
  BbrDriver d;
  const DataRate bw = DataRate::mbps(40);
  const TimeDelta rtt = TimeDelta::millis(20);
  reach_probe_bw(d, bw, rtt);
  for (int i = 0; i < 50; ++i) d.round(bw, rtt, bdp_segments(bw, rtt), 50);
  const uint64_t cwnd_before = d.bbr.cwnd();
  d.bbr.on_congestion_event(d.now, /*inflight=*/100);
  EXPECT_LE(d.bbr.cwnd(), 101u);  // packet conservation
  d.round(bw, rtt, 100, 10, 0, /*in_recovery=*/true);
  d.bbr.on_recovery_exit(d.now, 100);
  EXPECT_GE(d.bbr.cwnd(), cwnd_before);  // prior cwnd restored
}

TEST(Bbr, LossDoesNotReduceBandwidthModel) {
  // BBRv1's defining property: loss leaves BtlBw untouched.
  BbrDriver d;
  const DataRate bw = DataRate::mbps(40);
  const TimeDelta rtt = TimeDelta::millis(20);
  reach_probe_bw(d, bw, rtt);
  const DataRate bw_before = d.bbr.bottleneck_bw();
  for (int i = 0; i < 5; ++i) {
    d.round(bw, rtt, bdp_segments(bw, rtt), 10, /*lost=*/5);
  }
  EXPECT_EQ(d.bbr.bottleneck_bw(), bw_before);
}

TEST(Bbr, RtoDropsToFloorButKeepsModel) {
  BbrDriver d;
  const DataRate bw = DataRate::mbps(40);
  const TimeDelta rtt = TimeDelta::millis(20);
  reach_probe_bw(d, bw, rtt);
  d.bbr.on_rto(d.now);
  EXPECT_EQ(d.bbr.cwnd(), 4u);
  EXPECT_EQ(d.bbr.bottleneck_bw(), DataRate::mbps(40));
}

TEST(Bbr, AppLimitedSamplesOnlyRaiseFilter) {
  BbrDriver d;
  const TimeDelta rtt = TimeDelta::millis(20);
  d.round(DataRate::mbps(40), rtt, 100);
  ASSERT_EQ(d.bbr.bottleneck_bw(), DataRate::mbps(40));
  // A *lower* app-limited sample must not displace the estimate.
  AckEvent ev;
  ev.now = d.now + rtt;
  ev.newly_acked = 10;
  ev.inflight = 100;
  ev.rate.delivery_rate = DataRate::mbps(5);
  ev.rate.is_app_limited = true;
  ev.rate.prior_delivered = d.delivered;
  ev.delivered_total = d.delivered + 10;
  ev.rtt_sample = rtt;
  d.bbr.on_ack(ev);
  EXPECT_EQ(d.bbr.bottleneck_bw(), DataRate::mbps(40));
}

}  // namespace
}  // namespace ccas
