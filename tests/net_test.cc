// Tests for the network substrate: drop-tail queue, serializing link,
// delay lines, switch/demux, and the dumbbell topology wiring.
#include <gtest/gtest.h>

#include <vector>

#include "src/net/delay_line.h"
#include "src/net/link.h"
#include "src/net/queue.h"
#include "src/net/switch.h"
#include "src/net/topology.h"

namespace ccas {
namespace {

class CollectorSink : public PacketSink {
 public:
  explicit CollectorSink(Simulator& sim) : sim_(sim) {}
  void accept(Packet&& pkt) override {
    packets.push_back(pkt);
    arrival_times.push_back(sim_.now());
  }
  std::vector<Packet> packets;
  std::vector<Time> arrival_times;

 private:
  Simulator& sim_;
};

Packet data_packet(uint32_t flow, uint64_t seq) {
  return Packet::make_data(flow, DumbbellTopology::kToReceivers, seq, false);
}

// -------------------------------------------------------- queue + link ----

struct LinkFixture {
  explicit LinkFixture(DataRate rate, int64_t buffer_bytes)
      : sink(sim),
        queue(sim, buffer_bytes),
        link(sim, rate, &sink) {
    queue.set_downstream(&link);
    link.set_source(&queue);
  }
  Simulator sim;
  CollectorSink sink;
  DropTailQueue queue;
  Link link;
};

TEST(Link, SerializesAtConfiguredRate) {
  LinkFixture f(DataRate::mbps(100), 1'000'000);
  f.queue.accept(data_packet(0, 0));
  f.queue.accept(data_packet(0, 1));
  f.sim.run();
  ASSERT_EQ(f.sink.packets.size(), 2u);
  // 1500 bytes at 100 Mbps = 120 us per packet, back to back.
  EXPECT_EQ(f.sink.arrival_times[0], Time::zero() + TimeDelta::micros(120));
  EXPECT_EQ(f.sink.arrival_times[1], Time::zero() + TimeDelta::micros(240));
  EXPECT_EQ(f.link.delivered_packets(), 2u);
  EXPECT_EQ(f.link.delivered_bytes(), 3000u);
}

TEST(Link, IdleLinkStartsImmediatelyOnArrival) {
  LinkFixture f(DataRate::mbps(100), 1'000'000);
  f.sim.run_until(Time::zero() + TimeDelta::millis(5));
  f.queue.accept(data_packet(0, 0));
  f.sim.run();
  ASSERT_EQ(f.sink.packets.size(), 1u);
  EXPECT_EQ(f.sink.arrival_times[0],
            Time::zero() + TimeDelta::millis(5) + TimeDelta::micros(120));
}

TEST(DropTailQueue, DropsWhenFullAndLogs) {
  // Capacity for exactly two buffered packets (the head-of-line packet is
  // pulled into transmission immediately, so packet 0 leaves the buffer).
  LinkFixture f(DataRate::kbps(100), 2 * kDataPacketBytes);
  f.queue.reserve_flows(2);
  f.queue.accept(data_packet(0, 0));  // -> in transmission
  f.queue.accept(data_packet(0, 1));  // buffered
  f.queue.accept(data_packet(1, 2));  // buffered
  f.queue.accept(data_packet(1, 3));  // dropped: buffer full
  EXPECT_EQ(f.queue.stats().dropped_packets, 1u);
  EXPECT_EQ(f.queue.per_flow_drops()[0], 0u);
  EXPECT_EQ(f.queue.per_flow_drops()[1], 1u);
  ASSERT_EQ(f.queue.drop_log().size(), 1u);
  EXPECT_EQ(f.queue.drop_log()[0].flow_id, 1u);
  f.sim.run();
  EXPECT_EQ(f.sink.packets.size(), 3u);
  EXPECT_EQ(f.queue.stats().dequeued_packets, 3u);
}

TEST(DropTailQueue, SpaceFreedByDequeueAdmitsAgain) {
  LinkFixture f(DataRate::mbps(100), 2 * kDataPacketBytes);
  f.queue.accept(data_packet(0, 0));
  f.queue.accept(data_packet(0, 1));
  // After one serialization time the head leaves; a new packet fits.
  f.sim.run_until(Time::zero() + TimeDelta::micros(130));
  f.queue.accept(data_packet(0, 2));
  f.sim.run();
  EXPECT_EQ(f.sink.packets.size(), 3u);
  EXPECT_EQ(f.queue.stats().dropped_packets, 0u);
}

TEST(DropTailQueue, TracksMaxDepthAndBytes) {
  LinkFixture f(DataRate::kbps(10), 10 * kDataPacketBytes);
  // One packet goes straight to the link; four stay buffered.
  for (int i = 0; i < 5; ++i) f.queue.accept(data_packet(0, i));
  EXPECT_EQ(f.queue.stats().max_queued_bytes, 4 * kDataPacketBytes);
  EXPECT_EQ(f.queue.queued_bytes(), 4 * kDataPacketBytes);
  EXPECT_EQ(f.queue.queued_packets(), 4u);
}

TEST(DropTailQueue, ResetAccountingClearsCountersNotContents) {
  LinkFixture f(DataRate::kbps(10), 2 * kDataPacketBytes);
  f.queue.reserve_flows(1);
  f.queue.accept(data_packet(0, 0));
  f.queue.accept(data_packet(0, 1));
  f.queue.accept(data_packet(0, 2));  // drop
  f.queue.reset_accounting();
  EXPECT_EQ(f.queue.stats().dropped_packets, 0u);
  EXPECT_EQ(f.queue.stats().enqueued_packets, 0u);
  EXPECT_TRUE(f.queue.drop_log().empty());
  EXPECT_EQ(f.queue.per_flow_drops()[0], 0u);
  // Contents survive.
  EXPECT_EQ(f.queue.queued_packets(), 2u);
}

TEST(DropTailQueue, DropLogCanBeDisabled) {
  LinkFixture f(DataRate::kbps(10), kDataPacketBytes);
  f.queue.set_drop_log_enabled(false);
  f.queue.accept(data_packet(0, 0));  // -> in transmission
  f.queue.accept(data_packet(0, 1));  // buffered
  f.queue.accept(data_packet(0, 2));  // drop, not logged
  EXPECT_EQ(f.queue.stats().dropped_packets, 1u);
  EXPECT_TRUE(f.queue.drop_log().empty());
}

TEST(DropTailQueue, RejectsNonPositiveCapacity) {
  Simulator sim;
  EXPECT_THROW(DropTailQueue(sim, 0), std::invalid_argument);
}

// --------------------------------------------------------- delay lines ----

TEST(DelayLine, DelaysAllPacketsUniformly) {
  Simulator sim;
  CollectorSink sink(sim);
  DelayLine line(sim, TimeDelta::millis(10), &sink);
  line.accept(data_packet(0, 0));
  sim.run_until(Time::zero() + TimeDelta::millis(3));
  line.accept(data_packet(0, 1));
  sim.run();
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(sink.arrival_times[0], Time::zero() + TimeDelta::millis(10));
  EXPECT_EQ(sink.arrival_times[1], Time::zero() + TimeDelta::millis(13));
  EXPECT_EQ(sink.packets[0].seq, 0u);
  EXPECT_EQ(sink.packets[1].seq, 1u);
}

TEST(NetemDelay, PerFlowDelays) {
  Simulator sim;
  CollectorSink sink(sim);
  NetemDelay netem(sim, &sink);
  netem.set_flow_delay(0, TimeDelta::millis(50));
  netem.set_flow_delay(1, TimeDelta::millis(5));
  netem.accept(data_packet(0, 100));
  netem.accept(data_packet(1, 200));
  sim.run();
  ASSERT_EQ(sink.packets.size(), 2u);
  // Flow 1's packet overtakes flow 0's.
  EXPECT_EQ(sink.packets[0].flow_id, 1u);
  EXPECT_EQ(sink.arrival_times[0], Time::zero() + TimeDelta::millis(5));
  EXPECT_EQ(sink.packets[1].flow_id, 0u);
  EXPECT_EQ(sink.arrival_times[1], Time::zero() + TimeDelta::millis(50));
}

TEST(NetemDelay, PreservesPerFlowOrderAndRecyclesSlots) {
  Simulator sim;
  CollectorSink sink(sim);
  NetemDelay netem(sim, &sink);
  netem.set_flow_delay(0, TimeDelta::millis(1));
  for (int round = 0; round < 10; ++round) {
    for (uint64_t i = 0; i < 100; ++i) {
      netem.accept(data_packet(0, round * 100 + i));
    }
    sim.run();
  }
  ASSERT_EQ(sink.packets.size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(sink.packets[i].seq, i);
  EXPECT_EQ(netem.in_transit(), 0u);
}

TEST(NetemDelay, JitterSpreadsArrivalsWithoutReordering) {
  Simulator sim;
  CollectorSink sink(sim);
  NetemDelay netem(sim, &sink);
  netem.set_flow_delay(0, TimeDelta::millis(10));
  netem.set_jitter(TimeDelta::millis(1), /*seed=*/99);
  for (uint64_t i = 0; i < 200; ++i) {
    netem.accept(data_packet(0, i));
    sim.run_until(sim.now() + TimeDelta::micros(100));
  }
  sim.run();
  ASSERT_EQ(sink.packets.size(), 200u);
  bool saw_extra_delay = false;
  for (size_t i = 0; i < 200; ++i) {
    // In order despite randomness.
    EXPECT_EQ(sink.packets[i].seq, i);
    const TimeDelta delay =
        sink.arrival_times[i] -
        (Time::zero() + TimeDelta::micros(100) * static_cast<int64_t>(i));
    EXPECT_GE(delay, TimeDelta::millis(10));
    EXPECT_LE(delay, TimeDelta::millis(11) + TimeDelta::micros(1));
    if (delay > TimeDelta::millis(10)) saw_extra_delay = true;
  }
  EXPECT_TRUE(saw_extra_delay);
}

TEST(NetemDelay, JitterIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    CollectorSink sink(sim);
    NetemDelay netem(sim, &sink);
    netem.set_flow_delay(0, TimeDelta::millis(5));
    netem.set_jitter(TimeDelta::millis(2), seed);
    for (uint64_t i = 0; i < 50; ++i) netem.accept(data_packet(0, i));
    sim.run();
    return sink.arrival_times;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

// ------------------------------------------------------- switch/demux ----

TEST(SoftwareSwitch, RoutesByDestination) {
  Simulator sim;
  CollectorSink a(sim);
  CollectorSink b(sim);
  SoftwareSwitch sw;
  sw.add_route(0, &a);
  sw.add_route(1, &b);
  Packet p0 = data_packet(9, 0);
  p0.dst = 0;
  Packet p1 = data_packet(9, 1);
  p1.dst = 1;
  sw.accept(std::move(p0));
  sw.accept(std::move(p1));
  EXPECT_EQ(a.packets.size(), 1u);
  EXPECT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(sw.forwarded(), 2u);
}

TEST(SoftwareSwitch, CountsUnroutablePackets) {
  SoftwareSwitch sw;
  Packet p = data_packet(0, 0);
  p.dst = 42;
  sw.accept(std::move(p));
  EXPECT_EQ(sw.dropped_no_route(), 1u);
}

TEST(FlowDemux, RoutesByFlowId) {
  Simulator sim;
  CollectorSink a(sim);
  CollectorSink b(sim);
  FlowDemux demux;
  demux.register_flow(3, &a);
  demux.register_flow(7, &b);
  demux.accept(data_packet(3, 0));
  demux.accept(data_packet(7, 1));
  demux.accept(data_packet(99, 2));  // unknown
  EXPECT_EQ(a.packets.size(), 1u);
  EXPECT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(demux.delivered(), 2u);
  EXPECT_EQ(demux.dropped_unknown_flow(), 1u);
}

// ------------------------------------------------------------ topology ----

TEST(DumbbellTopology, DataPathDeliversToReceiverEndpointWithRtt) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = DataRate::mbps(100);
  cfg.buffer_bytes = 1'000'000;
  cfg.jitter = TimeDelta::zero();  // exact timing checks below
  DumbbellTopology topo(sim, cfg);
  CollectorSink sender_ep(sim);
  CollectorSink receiver_ep(sim);
  topo.register_flow(0, TimeDelta::millis(20), &sender_ep, &receiver_ep);

  topo.data_entry(0).accept(data_packet(0, 5));
  sim.run();
  ASSERT_EQ(receiver_ep.packets.size(), 1u);
  // Serialization (120 us) + forward half of base RTT (10 ms).
  EXPECT_EQ(receiver_ep.arrival_times[0],
            Time::zero() + TimeDelta::micros(120) + TimeDelta::millis(10));

  // ACK path: reverse half of base RTT, no serialization (uncongested).
  Packet ack = Packet::make_ack(0, DumbbellTopology::kToSenders, 6);
  const Time ack_sent = sim.now();
  topo.ack_entry().accept(std::move(ack));
  sim.run();
  ASSERT_EQ(sender_ep.packets.size(), 1u);
  EXPECT_EQ(sender_ep.arrival_times[0] - ack_sent, TimeDelta::millis(10));
}

TEST(DumbbellTopology, RoundTripMatchesBaseRttPlusSerialization) {
  // Odd RTT: the forward/reverse split must still sum to the full base RTT.
  Simulator sim;
  DumbbellConfig cfg;
  cfg.jitter = TimeDelta::zero();  // exact timing checks below
  DumbbellTopology topo(sim, cfg);
  CollectorSink sender_ep(sim);
  CollectorSink receiver_ep(sim);
  topo.register_flow(0, TimeDelta::nanos(20'000'001), &sender_ep, &receiver_ep);
  topo.data_entry(0).accept(data_packet(0, 0));
  sim.run();
  topo.ack_entry().accept(Packet::make_ack(0, DumbbellTopology::kToSenders, 1));
  sim.run();
  ASSERT_EQ(sender_ep.packets.size(), 1u);
  const TimeDelta rtt = sender_ep.arrival_times[0] - Time::zero();
  EXPECT_EQ(rtt, TimeDelta::nanos(20'000'001) +
                     cfg.bottleneck_rate.transfer_time(kDataPacketBytes));
}

TEST(DumbbellTopology, AssignsFlowsToPairsRoundRobin) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.num_pairs = 10;
  DumbbellTopology topo(sim, cfg);
  EXPECT_EQ(topo.pair_of_flow(0), 0);
  EXPECT_EQ(topo.pair_of_flow(9), 9);
  EXPECT_EQ(topo.pair_of_flow(10), 0);
  EXPECT_EQ(topo.pair_of_flow(25), 5);
}

TEST(DumbbellTopology, OptionalEdgeLinksSerialize) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.edge_rate = DataRate::gbps(25);
  cfg.jitter = TimeDelta::zero();  // exact timing checks below
  DumbbellTopology topo(sim, cfg);
  CollectorSink sender_ep(sim);
  CollectorSink receiver_ep(sim);
  topo.register_flow(0, TimeDelta::millis(20), &sender_ep, &receiver_ep);
  topo.data_entry(0).accept(data_packet(0, 0));
  sim.run();
  ASSERT_EQ(receiver_ep.packets.size(), 1u);
  // Edge serialization (1500B at 25 Gbps = 480 ns) + bottleneck (120 us)
  // + 10 ms forward delay.
  EXPECT_EQ(receiver_ep.arrival_times[0],
            Time::zero() + TimeDelta::nanos(480) + TimeDelta::micros(120) +
                TimeDelta::millis(10));
}

TEST(DumbbellTopology, RejectsBadConfig) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.num_pairs = 0;
  EXPECT_THROW(DumbbellTopology(sim, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace ccas
