// Tests for the sweep supervision layer: failure taxonomy and backoff,
// per-cell budgets (events / RSS / wall-clock watchdog), failure isolation
// with partial results, transient retry, the resumable manifest (journal
// round trip, salt pinning, torn tails, byte-identical resume), quarantine
// .repro emission, result-cache write hardening, the spec→CLI renderer,
// and a property test over randomly faulted sweeps.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/cli.h"
#include "src/harness/runner.h"
#include "src/sweep/executor.h"
#include "src/sweep/manifest.h"
#include "src/sweep/result_cache.h"
#include "src/sweep/spec_hash.h"
#include "src/sweep/supervisor.h"

namespace ccas::sweep {
namespace {

namespace fs = std::filesystem;

// A cheap but non-trivial spec (mirrors sweep_test.cc): a few flows over a
// small link for a short simulated time.
ExperimentSpec small_spec(const char* cca = "newreno", int flows = 3,
                          uint64_t seed = 7) {
  ExperimentSpec spec;
  spec.scenario = Scenario::edge_scale();
  spec.scenario.net.bottleneck_rate = DataRate::mbps(10);
  spec.scenario.net.buffer_bytes = 100'000;
  spec.scenario.stagger = TimeDelta::seconds_f(0.5);
  spec.scenario.warmup = TimeDelta::seconds(1);
  spec.scenario.measure = TimeDelta::seconds(3);
  spec.groups.push_back(FlowGroup{cca, flows, TimeDelta::millis(20)});
  spec.seed = seed;
  return spec;
}

// An even cheaper spec for the property test (hundreds of runs).
ExperimentSpec tiny_spec(uint64_t seed, int flows) {
  ExperimentSpec spec;
  spec.scenario = Scenario::edge_scale();
  spec.scenario.net.bottleneck_rate = DataRate::mbps(5);
  spec.scenario.net.buffer_bytes = 50'000;
  spec.scenario.stagger = TimeDelta::seconds_f(0.05);
  spec.scenario.warmup = TimeDelta::seconds_f(0.1);
  spec.scenario.measure = TimeDelta::seconds_f(0.2);
  spec.groups.push_back(FlowGroup{"newreno", flows, TimeDelta::millis(10)});
  spec.seed = seed;
  return spec;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::current_path() /
            ("supervisor_test_" + tag + "_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + std::to_string(counter_++));
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

SweepOptions quiet_options() {
  SweepOptions opts;
  opts.progress = false;
  return opts;
}

std::string digest(const ExperimentResult& r) { return serialize_result(r); }

// ---------------------------------------------------------------------------
// Taxonomy, backoff, watchdog, injection parsing.
// ---------------------------------------------------------------------------

TEST(SweepSupervisor, FailureClassNamesRoundTrip) {
  for (const FailureClass cls :
       {FailureClass::kException, FailureClass::kAuditViolation,
        FailureClass::kBudgetWall, FailureClass::kBudgetEvents,
        FailureClass::kBudgetRss, FailureClass::kCacheIo}) {
    const auto back = failure_class_from_name(failure_class_name(cls));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, cls);
  }
  EXPECT_FALSE(failure_class_from_name("no-such-class").has_value());
}

TEST(SweepSupervisor, OnlyCacheIoIsTransient) {
  EXPECT_TRUE(failure_is_transient(FailureClass::kCacheIo));
  EXPECT_FALSE(failure_is_transient(FailureClass::kException));
  EXPECT_FALSE(failure_is_transient(FailureClass::kAuditViolation));
  EXPECT_FALSE(failure_is_transient(FailureClass::kBudgetWall));
  EXPECT_FALSE(failure_is_transient(FailureClass::kBudgetEvents));
  EXPECT_FALSE(failure_is_transient(FailureClass::kBudgetRss));
  EXPECT_TRUE(failure_is_budget(FailureClass::kBudgetWall));
  EXPECT_TRUE(failure_is_budget(FailureClass::kBudgetEvents));
  EXPECT_TRUE(failure_is_budget(FailureClass::kBudgetRss));
  EXPECT_FALSE(failure_is_budget(FailureClass::kCacheIo));
}

TEST(SweepSupervisor, RetryBackoffIsDeterministicAndCapped) {
  EXPECT_EQ(retry_backoff(1), TimeDelta::millis(10));
  EXPECT_EQ(retry_backoff(2), TimeDelta::millis(20));
  EXPECT_EQ(retry_backoff(3), TimeDelta::millis(40));
  EXPECT_EQ(retry_backoff(4), TimeDelta::millis(80));
  EXPECT_EQ(retry_backoff(5), TimeDelta::millis(160));
  EXPECT_EQ(retry_backoff(6), TimeDelta::millis(160));  // shift saturates
  EXPECT_EQ(retry_backoff(100), TimeDelta::millis(160));
  EXPECT_EQ(retry_backoff(0), TimeDelta::millis(10));  // clamped
}

TEST(SweepSupervisor, WatchdogSetsTheFlagAfterTimeout) {
  std::atomic<bool> expired{false};
  {
    CellWatchdog dog(TimeDelta::millis(20), &expired);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!expired.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(expired.load());
}

TEST(SweepSupervisor, WatchdogDisarmsOnDestruction) {
  std::atomic<bool> expired{false};
  { CellWatchdog dog(TimeDelta::seconds(30), &expired); }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(expired.load());
}

TEST(SweepSupervisor, ZeroTimeoutWatchdogIsInert) {
  std::atomic<bool> expired{false};
  { CellWatchdog dog(TimeDelta::zero(), &expired); }
  EXPECT_FALSE(expired.load());
}

TEST(SweepSupervisor, ParsesFaultInjectionSyntax) {
  const auto plan =
      parse_fault_injections("a:throw;b:cacheio:2;rate=5:rtt=10:hang");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].cell, "a");
  EXPECT_EQ(plan[0].fault, InjectedFault::kThrow);
  EXPECT_EQ(plan[0].count, 1);
  EXPECT_EQ(plan[1].cell, "b");
  EXPECT_EQ(plan[1].fault, InjectedFault::kCacheIo);
  EXPECT_EQ(plan[1].count, 2);
  // Cell names may contain ':'; the class and count split from the right.
  EXPECT_EQ(plan[2].cell, "rate=5:rtt=10");
  EXPECT_EQ(plan[2].fault, InjectedFault::kHang);

  EXPECT_THROW((void)parse_fault_injections("noclass"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_injections("a:frobnicate"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_injections(":throw"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_injections("a:throw:0"),
               std::invalid_argument);
}

TEST(SweepSupervisor, FaultPlanConsumesCounts) {
  FaultPlan plan(parse_fault_injections("c:cacheio:2"));
  EXPECT_TRUE(plan.next("other") == std::nullopt);
  ASSERT_TRUE(plan.next("c").has_value());
  ASSERT_TRUE(plan.next("c").has_value());
  EXPECT_TRUE(plan.next("c") == std::nullopt);  // spent
}

// ---------------------------------------------------------------------------
// Budgets.
// ---------------------------------------------------------------------------

TEST(SweepSupervisor, EventCeilingFailsTheCellDeterministically) {
  SweepSpec sweep;
  sweep.add_cell("capped", small_spec());
  SweepOptions opts = quiet_options();
  opts.max_cell_events = 500;
  SweepExecutor executor(opts);
  const auto outcomes = executor.run(sweep);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, CellStatus::kFailed);
  ASSERT_TRUE(outcomes[0].failure.has_value());
  EXPECT_EQ(outcomes[0].failure->cls, FailureClass::kBudgetEvents);
  EXPECT_EQ(outcomes[0].attempts, 1);  // budget blowouts never retry
}

TEST(SweepSupervisor, RssCeilingFailsTheCell) {
  SweepSpec sweep;
  sweep.add_cell("heavy", small_spec());
  SweepOptions opts = quiet_options();
  opts.max_cell_rss_bytes = 1;  // any estimate blows this
  SweepExecutor executor(opts);
  const auto outcomes = executor.run(sweep);
  ASSERT_EQ(outcomes[0].status, CellStatus::kFailed);
  EXPECT_EQ(outcomes[0].failure->cls, FailureClass::kBudgetRss);
}

TEST(SweepSupervisor, WatchdogCancelsAHungCell) {
  ScopedEnv env("CCAS_FAIL_CELL", "hung:hang");
  SweepSpec sweep;
  sweep.add_cell("hung", small_spec());
  SweepOptions opts = quiet_options();
  opts.cell_timeout = TimeDelta::millis(100);
  SweepExecutor executor(opts);
  const auto outcomes = executor.run(sweep);
  ASSERT_EQ(outcomes[0].status, CellStatus::kFailed);
  EXPECT_EQ(outcomes[0].failure->cls, FailureClass::kBudgetWall);
  EXPECT_LT(outcomes[0].wall_sec, 4.0);  // cancelled well before the 5s cap
}

TEST(SweepSupervisor, GenerousBudgetsDoNotPerturbResults) {
  SweepSpec sweep;
  sweep.add_cell("cell", small_spec());

  SweepExecutor bare(quiet_options());
  const auto reference = bare.run(sweep);

  SweepOptions opts = quiet_options();
  opts.cell_timeout = TimeDelta::seconds(300);
  opts.max_cell_events = 1'000'000'000ULL;
  opts.max_cell_rss_bytes = 1LL << 40;
  SweepExecutor budgeted(opts);
  const auto supervised = budgeted.run(sweep);

  ASSERT_EQ(supervised[0].status, CellStatus::kOk);
  EXPECT_EQ(digest(reference[0].result), digest(supervised[0].result));
}

// ---------------------------------------------------------------------------
// Failure isolation and retry.
// ---------------------------------------------------------------------------

TEST(SweepSupervisor, PartialResultsWithFailuresInCellOrder) {
  // Reference: the same healthy cells, unsupervised.
  SweepSpec healthy;
  healthy.add_cell("a", small_spec("newreno", 2, 1));
  healthy.add_cell("c", small_spec("newreno", 2, 3));
  healthy.add_cell("e", small_spec("newreno", 2, 5));
  SweepExecutor ref(quiet_options());
  const auto ref_outcomes = ref.run(healthy);

  ScopedEnv env("CCAS_FAIL_CELL", "b:throw;d:audit");
  SweepSpec sweep;
  sweep.add_cell("a", small_spec("newreno", 2, 1));
  sweep.add_cell("b", small_spec("newreno", 2, 2));
  sweep.add_cell("c", small_spec("newreno", 2, 3));
  sweep.add_cell("d", small_spec("newreno", 2, 4));
  sweep.add_cell("e", small_spec("newreno", 2, 5));
  SweepOptions opts = quiet_options();
  opts.jobs = 4;
  SweepExecutor executor(opts);
  const auto outcomes = executor.run(sweep);

  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_EQ(outcomes[0].status, CellStatus::kOk);
  EXPECT_EQ(outcomes[1].status, CellStatus::kFailed);
  EXPECT_EQ(outcomes[2].status, CellStatus::kOk);
  EXPECT_EQ(outcomes[3].status, CellStatus::kFailed);
  EXPECT_EQ(outcomes[4].status, CellStatus::kOk);

  // failures() preserves cell order regardless of worker completion order.
  ASSERT_EQ(executor.failures().size(), 2u);
  EXPECT_EQ(executor.failures()[0].cell, "b");
  EXPECT_EQ(executor.failures()[0].cls, FailureClass::kException);
  EXPECT_EQ(executor.failures()[1].cell, "d");
  EXPECT_EQ(executor.failures()[1].cls, FailureClass::kAuditViolation);
  EXPECT_EQ(executor.summary().failed, 2);

  // Healthy cells are byte-identical to the unsupervised run.
  EXPECT_EQ(digest(outcomes[0].result), digest(ref_outcomes[0].result));
  EXPECT_EQ(digest(outcomes[2].result), digest(ref_outcomes[1].result));
  EXPECT_EQ(digest(outcomes[4].result), digest(ref_outcomes[2].result));
}

TEST(SweepSupervisor, TransientFailureRetriesAndSucceeds) {
  ScopedEnv env("CCAS_FAIL_CELL", "flaky:cacheio:2");
  SweepSpec sweep;
  sweep.add_cell("flaky", small_spec());
  SweepOptions opts = quiet_options();
  opts.retries = 2;
  SweepExecutor executor(opts);
  const auto outcomes = executor.run(sweep);
  ASSERT_EQ(outcomes[0].status, CellStatus::kOk);
  EXPECT_EQ(outcomes[0].attempts, 3);
  EXPECT_EQ(executor.summary().retries, 2);
  EXPECT_EQ(executor.summary().failed, 0);

  SweepExecutor bare(quiet_options());
  const auto reference = bare.run(sweep);
  EXPECT_EQ(digest(outcomes[0].result), digest(reference[0].result));
}

TEST(SweepSupervisor, TransientFailureExhaustsRetries) {
  ScopedEnv env("CCAS_FAIL_CELL", "flaky:cacheio:5");
  SweepSpec sweep;
  sweep.add_cell("flaky", small_spec());
  SweepOptions opts = quiet_options();
  opts.retries = 1;
  SweepExecutor executor(opts);
  const auto outcomes = executor.run(sweep);
  ASSERT_EQ(outcomes[0].status, CellStatus::kFailed);
  EXPECT_EQ(outcomes[0].failure->cls, FailureClass::kCacheIo);
  EXPECT_EQ(outcomes[0].attempts, 2);  // first attempt + one retry
}

TEST(SweepSupervisor, DeterministicFailuresNeverRetry) {
  ScopedEnv env("CCAS_FAIL_CELL", "bad:throw:5");
  SweepSpec sweep;
  sweep.add_cell("bad", small_spec());
  SweepOptions opts = quiet_options();
  opts.retries = 16;
  SweepExecutor executor(opts);
  const auto outcomes = executor.run(sweep);
  ASSERT_EQ(outcomes[0].status, CellStatus::kFailed);
  EXPECT_EQ(outcomes[0].attempts, 1);
}

TEST(SweepSupervisor, MaxFailuresAbortsAndSkipsRemainingCells) {
  ScopedEnv env("CCAS_FAIL_CELL", "c0:throw;c1:throw;c2:throw;c3:throw");
  SweepSpec sweep;
  for (int i = 0; i < 4; ++i) {
    sweep.add_cell("c" + std::to_string(i),
                   small_spec("newreno", 1, 10 + static_cast<uint64_t>(i)));
  }
  SweepOptions opts = quiet_options();
  opts.jobs = 1;  // deterministic claim order
  opts.max_failures = 1;
  SweepExecutor executor(opts);
  const auto outcomes = executor.run(sweep);
  EXPECT_EQ(outcomes[0].status, CellStatus::kFailed);
  EXPECT_EQ(outcomes[1].status, CellStatus::kSkipped);
  EXPECT_EQ(outcomes[2].status, CellStatus::kSkipped);
  EXPECT_EQ(outcomes[3].status, CellStatus::kSkipped);
  EXPECT_EQ(executor.summary().failed, 1);
  EXPECT_EQ(executor.summary().skipped, 3);
  EXPECT_EQ(outcomes[1].attempts, 0);
}

TEST(SweepSupervisor, FailFastStillThrowsTheOriginalException) {
  ScopedEnv env("CCAS_FAIL_CELL", "boom:throw");
  SweepSpec sweep;
  sweep.add_cell("boom", small_spec());
  SweepOptions opts = quiet_options();
  opts.fail_fast = true;
  SweepExecutor executor(opts);
  EXPECT_THROW((void)executor.run(sweep), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Quarantine.
// ---------------------------------------------------------------------------

TEST(SweepSupervisor, QuarantineFileCarriesAReplayCommand) {
  TempDir dir("quarantine");
  ScopedEnv env("CCAS_FAIL_CELL", "victim:throw");
  SweepSpec sweep;
  sweep.add_cell("victim", small_spec("newreno", 2, 42));
  SweepOptions opts = quiet_options();
  opts.quarantine_dir = dir.str();
  opts.max_cell_events = 123456;
  SweepExecutor executor(opts);
  const auto outcomes = executor.run(sweep);
  ASSERT_EQ(outcomes[0].status, CellStatus::kFailed);

  const std::string path =
      dir.str() + "/" + cache_key_hex(outcomes[0].cache_key) + ".repro";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("# class: exception"), std::string::npos);
  EXPECT_NE(contents.find("# cell: victim"), std::string::npos);
  // The replay line reconstructs the injection for ccas_run's "seed=N"
  // cell naming, the spec flags, and the budget ceilings.
  EXPECT_NE(contents.find("CCAS_FAIL_CELL='seed=42:throw'"), std::string::npos);
  EXPECT_NE(contents.find("ccas_run"), std::string::npos);
  EXPECT_NE(contents.find("--seed=42"), std::string::npos);
  EXPECT_NE(contents.find("--setting=edge"), std::string::npos);
  EXPECT_NE(contents.find("--cell-events=123456"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------------

TEST(SweepManifest, JournalRoundTrips) {
  TempDir dir("journal");
  {
    SweepManifest manifest(dir.str(), "salt-a");
    manifest.record_ok(0x1111, 1);
    CellFailure f{"cell-b", FailureClass::kBudgetEvents,
                  "event budget: line one\nline two", 0x2222, 3};
    manifest.record_failure(f);
  }
  SweepManifest manifest(dir.str(), "salt-a");
  EXPECT_EQ(manifest.size(), 2u);
  const ManifestRecord* ok = manifest.find(0x1111);
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->ok);
  EXPECT_EQ(ok->attempts, 1);
  const ManifestRecord* fail = manifest.find(0x2222);
  ASSERT_NE(fail, nullptr);
  EXPECT_FALSE(fail->ok);
  EXPECT_EQ(fail->cls, FailureClass::kBudgetEvents);
  EXPECT_EQ(fail->attempts, 3);
  // The `what` is flattened to one journal-safe line.
  EXPECT_EQ(fail->what.find('\n'), std::string::npos);
  EXPECT_EQ(manifest.find(0x3333), nullptr);
}

TEST(SweepManifest, SaltMismatchIsRefused) {
  TempDir dir("salt");
  { SweepManifest manifest(dir.str(), "salt-a"); }
  EXPECT_THROW(SweepManifest(dir.str(), "salt-b"), std::invalid_argument);
}

TEST(SweepManifest, ExecutorRefusesAMismatchedResumeDir) {
  TempDir dir("salt_exec");
  { SweepManifest manifest(dir.str(), std::string(kSweepCodeSalt)); }
  SweepSpec sweep;
  sweep.add_cell("cell", small_spec());
  SweepOptions opts = quiet_options();
  opts.resume_dir = dir.str();
  opts.cache_salt = "ccas-sim-v999";
  SweepExecutor executor(opts);
  EXPECT_THROW((void)executor.run(sweep), std::invalid_argument);
}

TEST(SweepManifest, TornTailLineIsSkipped) {
  TempDir dir("torn");
  {
    SweepManifest manifest(dir.str(), "salt-a");
    manifest.record_ok(0xaaaa, 1);
  }
  {
    std::ofstream out(dir.str() + "/manifest.log", std::ios::app);
    out << "cell 000000000000bbbb o";  // killed mid-append, no newline
  }
  SweepManifest manifest(dir.str(), "salt-a");
  EXPECT_EQ(manifest.size(), 1u);
  EXPECT_NE(manifest.find(0xaaaa), nullptr);
  EXPECT_EQ(manifest.find(0xbbbb), nullptr);
}

TEST(SweepManifest, LaterDuplicateRecordWins) {
  TempDir dir("dup");
  {
    SweepManifest manifest(dir.str(), "salt-a");
    CellFailure f{"cell", FailureClass::kCacheIo, "transient", 0xcccc, 2};
    manifest.record_failure(f);
    manifest.record_ok(0xcccc, 3);  // a successful retry on resume
  }
  SweepManifest manifest(dir.str(), "salt-a");
  EXPECT_EQ(manifest.size(), 1u);
  const ManifestRecord* rec = manifest.find(0xcccc);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->ok);
  EXPECT_EQ(rec->attempts, 3);
}

// ---------------------------------------------------------------------------
// Resume.
// ---------------------------------------------------------------------------

SweepSpec three_cell_sweep() {
  SweepSpec sweep;
  sweep.add_cell("s1", small_spec("newreno", 2, 1));
  sweep.add_cell("s2", small_spec("newreno", 2, 2));
  sweep.add_cell("s3", small_spec("newreno", 2, 3));
  return sweep;
}

TEST(SweepResume, SecondRunServesEveryCellFromTheManifest) {
  TempDir dir("resume_full");
  const SweepSpec sweep = three_cell_sweep();

  SweepOptions opts = quiet_options();
  opts.resume_dir = dir.str();
  SweepExecutor first(opts);
  const auto cold = first.run(sweep);
  EXPECT_EQ(first.summary().resumed, 0);

  SweepExecutor second(opts);
  const auto resumed = second.run(sweep);
  EXPECT_EQ(second.summary().resumed, 3);
  EXPECT_EQ(second.summary().from_cache, 3);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(resumed[i].resumed);
    EXPECT_EQ(digest(cold[i].result), digest(resumed[i].result));
  }
}

TEST(SweepResume, InterruptedSweepResumesByteIdentically) {
  // Uninterrupted reference.
  const SweepSpec sweep = three_cell_sweep();
  SweepExecutor ref(quiet_options());
  const auto reference = ref.run(sweep);

  TempDir dir("resume_kill");
  SweepOptions opts = quiet_options();
  opts.resume_dir = dir.str();
  opts.jobs = 1;
  {
    // "Kill" mid-sweep: the injected throw on s2 plus max_failures=1
    // aborts after s1 completed and s2 failed; s3 is never claimed.
    ScopedEnv env("CCAS_FAIL_CELL", "s2:throw");
    SweepOptions interrupted = opts;
    interrupted.max_failures = 1;
    SweepExecutor executor(interrupted);
    const auto outcomes = executor.run(sweep);
    EXPECT_EQ(outcomes[0].status, CellStatus::kOk);
    EXPECT_EQ(outcomes[1].status, CellStatus::kFailed);
    EXPECT_EQ(outcomes[2].status, CellStatus::kSkipped);
  }

  // Resume without the injection: s1 is served from the manifest, the
  // journaled failure on s2 is re-attempted (and now succeeds), s3 runs.
  SweepExecutor executor(opts);
  const auto outcomes = executor.run(sweep);
  EXPECT_EQ(executor.summary().resumed, 1);
  EXPECT_EQ(executor.summary().failed, 0);
  ASSERT_EQ(outcomes.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(outcomes[i].status, CellStatus::kOk);
    EXPECT_EQ(digest(reference[i].result), digest(outcomes[i].result))
        << "cell " << i;
  }
}

TEST(SweepResume, TracedCellsAlwaysRecompute) {
  TempDir dir("resume_traced");
  SweepSpec sweep;
  ExperimentSpec spec = small_spec();
  spec.trace_interval = TimeDelta::seconds(1);
  sweep.add_cell("traced", spec);

  SweepOptions opts = quiet_options();
  opts.resume_dir = dir.str();
  SweepExecutor first(opts);
  (void)first.run(sweep);
  SweepExecutor second(opts);
  const auto outcomes = second.run(sweep);
  EXPECT_EQ(second.summary().resumed, 0);
  EXPECT_FALSE(outcomes[0].result.trace.empty());
}

// ---------------------------------------------------------------------------
// Result-cache write hardening.
// ---------------------------------------------------------------------------

TEST(ResultCacheHardening, InjectedTornWriteIsRepairedByRetry) {
  TempDir dir("torn_write");
  ResultCache cache(dir.str());
  const ExperimentSpec spec = small_spec();
  const ExperimentResult result = run_experiment(spec);
  const uint64_t key = spec_cache_key(spec);

  cache.inject_write_failures(1);
  EXPECT_TRUE(cache.store(key, result));  // verify-after-rename + retry
  const auto back = cache.load(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(digest(result), digest(*back));
}

TEST(ResultCacheHardening, ExhaustedWriteRetriesReportFailure) {
  TempDir dir("exhausted");
  ResultCache cache(dir.str());
  const ExperimentSpec spec = small_spec();
  const ExperimentResult result = run_experiment(spec);
  cache.inject_write_failures(ResultCache::kStoreAttempts);
  EXPECT_FALSE(cache.store(spec_cache_key(spec), result));
}

TEST(ResultCacheHardening, TruncatedEntryTriggersRecompute) {
  TempDir dir("truncated");
  const SweepSpec sweep = three_cell_sweep();
  SweepOptions opts = quiet_options();
  opts.cache_dir = dir.str();
  SweepExecutor cold(opts);
  const auto reference = cold.run(sweep);

  // Truncate one entry on disk to half its size.
  const std::string victim =
      dir.str() + "/" + cache_key_hex(reference[1].cache_key) + ".ccres";
  const auto full_size = fs::file_size(victim);
  fs::resize_file(victim, full_size / 2);

  SweepExecutor warm(opts);
  const auto outcomes = warm.run(sweep);
  EXPECT_EQ(warm.summary().from_cache, 2);  // the truncated one recomputed
  EXPECT_FALSE(outcomes[1].from_cache);
  EXPECT_EQ(digest(reference[1].result), digest(outcomes[1].result));

  // The recompute rewrote the entry; a third run is fully cached again.
  SweepExecutor third(opts);
  (void)third.run(sweep);
  EXPECT_EQ(third.summary().from_cache, 3);
}

// ---------------------------------------------------------------------------
// Spec -> CLI rendering.
// ---------------------------------------------------------------------------

TEST(SpecCli, RoundTripReproducesTheCacheKey) {
  // Awkward values on purpose: none are exactly representable in binary,
  // so the renderer's ULP nudging has to do real work against the
  // truncating seconds_f/bps_f transforms.
  ExperimentSpec spec;
  spec.scenario = Scenario::edge_scale();
  spec.scenario.net.bottleneck_rate = DataRate::bps(7'300'001);
  spec.scenario.net.buffer_bytes = 123'457;
  spec.scenario.stagger = TimeDelta::nanos(123'456'789);
  spec.scenario.warmup = TimeDelta::nanos(987'654'321);
  spec.scenario.measure = TimeDelta::nanos(2'000'000'003);
  spec.scenario.net.jitter = TimeDelta::nanos(333'333);
  spec.groups.push_back(FlowGroup{"newreno", 2, TimeDelta::nanos(20'123'457)});
  spec.groups.push_back(FlowGroup{"cubic", 3, TimeDelta::millis(40)});
  spec.seed = 424242;
  ImpairmentConfig& imp = spec.scenario.net.impairments;
  imp.loss = 0.0123;
  imp.ge.p_good_to_bad = 0.001;
  imp.ge.p_bad_to_good = 0.1;
  imp.ge.loss_bad = 0.3;
  imp.ge.loss_good = 0.0001;
  imp.duplicate = 0.002;
  imp.reorder = 0.01;
  imp.reorder_delay = TimeDelta::nanos(1'234'567);
  imp.jitter = TimeDelta::nanos(45'678);
  imp.jitter_dist = ImpairmentConfig::JitterDist::kNormal;
  LinkFault down;
  down.at = Time::nanos(100'000'007);
  down.kind = LinkFault::Kind::kDown;
  LinkFault up;
  up.at = Time::nanos(200'000'011);
  up.kind = LinkFault::Kind::kUp;
  LinkFault rate;
  rate.at = Time::nanos(300'000'013);
  rate.kind = LinkFault::Kind::kRate;
  rate.rate = DataRate::bps(5'000'017);
  LinkFault buffer;
  buffer.at = Time::nanos(400'000'019);
  buffer.kind = LinkFault::Kind::kBuffer;
  buffer.buffer_bytes = 98'765;
  imp.faults = {down, up, rate, buffer};
  spec.tcp.sack_enabled = false;
  spec.tcp.rto_rearm_slack = TimeDelta::nanos(123'457);
  spec.receiver.delayed_ack = false;
  spec.receiver.gro_enabled = false;
  spec.trace_interval = TimeDelta::nanos(500'000'009);

  const SpecCliRendering rendering = spec_to_cli(spec);
  EXPECT_TRUE(rendering.notes.empty())
      << "unexpected note: " << rendering.notes.front();
  const CliOptions parsed = parse_cli(rendering.args);
  EXPECT_EQ(spec_cache_key(spec), spec_cache_key(parsed.spec))
      << spec_to_cli_command(spec);
  EXPECT_EQ(canonical_spec_bytes(spec), canonical_spec_bytes(parsed.spec));
}

TEST(SpecCli, SimpleSpecRoundTripsAndNamesTheTool) {
  const ExperimentSpec spec = small_spec("cubic", 4, 11);
  const CliOptions parsed = parse_cli(spec_to_cli(spec).args);
  EXPECT_EQ(spec_cache_key(spec), spec_cache_key(parsed.spec));
  const std::string cmd = spec_to_cli_command(spec);
  EXPECT_EQ(cmd.rfind("ccas_run --setting=edge", 0), 0u) << cmd;
}

TEST(SpecCli, UnrepresentableFieldsBecomeNotes) {
  ExperimentSpec spec = small_spec();
  spec.scenario.net.num_pairs = 7;
  spec.record_congestion_log = true;
  const SpecCliRendering rendering = spec_to_cli(spec);
  EXPECT_EQ(rendering.notes.size(), 2u);
}

// ---------------------------------------------------------------------------
// Property test: random faulty sweeps.
// ---------------------------------------------------------------------------

TEST(SweepSupervisorProperty, RandomlyFaultedSweepsKeepHealthyCellsIntact) {
  // 100 random tiny sweeps, each with one injected fault. Invariants:
  // the supervised run always completes, the victim fails with the
  // expected class (or succeeds via retire when transient), healthy cells
  // are byte-identical to their unsupervised runs, and a manifest written
  // during the faulted run resumes byte-identically.
  std::mt19937 rng(20260805);
  std::map<uint64_t, std::string> unsupervised;  // cache key -> digest

  const InjectedFault fault_pool[] = {InjectedFault::kThrow,
                                      InjectedFault::kAudit,
                                      InjectedFault::kEvents,
                                      InjectedFault::kRss,
                                      InjectedFault::kCacheIo,
                                      InjectedFault::kHang};
  int hang_budget = 4;  // hangs cost ~100ms of watchdog each; bound them

  for (int iter = 0; iter < 100; ++iter) {
    const int cells = 2 + static_cast<int>(rng() % 3);  // 2..4
    SweepSpec sweep;
    std::set<std::pair<uint64_t, int>> used;
    for (int c = 0; c < cells; ++c) {
      uint64_t seed;
      int flows;
      do {  // distinct specs: duplicate hashes would share manifest records
        seed = 1 + rng() % 50;
        flows = 1 + static_cast<int>(rng() % 2);
      } while (!used.emplace(seed, flows).second);
      sweep.add_cell("cell" + std::to_string(c) + "_s" + std::to_string(seed) +
                         "_f" + std::to_string(flows),
                     tiny_spec(seed, flows));
    }
    const size_t victim = rng() % sweep.cells.size();
    InjectedFault fault = fault_pool[rng() % std::size(fault_pool)];
    if (fault == InjectedFault::kHang && hang_budget-- <= 0) {
      fault = InjectedFault::kThrow;
    }
    // cacheio with count 5 exhausts retries=2; others fail first attempt.
    const std::string injection =
        sweep.cells[victim].name + ":" + injected_fault_name(fault) +
        (fault == InjectedFault::kCacheIo ? ":5" : "");

    SweepOptions opts = quiet_options();
    opts.jobs = 1 + static_cast<int>(rng() % 3);
    opts.retries = 2;
    if (fault == InjectedFault::kHang) {
      opts.cell_timeout = TimeDelta::millis(100);
    }
    TempDir dir("prop" + std::to_string(iter));
    opts.resume_dir = dir.str();

    std::vector<CellOutcome> outcomes;
    {
      ScopedEnv env("CCAS_FAIL_CELL", injection);
      SweepExecutor executor(opts);
      outcomes = executor.run(sweep);
    }
    ASSERT_EQ(outcomes.size(), sweep.cells.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (i == victim) {
        ASSERT_EQ(outcomes[i].status, CellStatus::kFailed)
            << "iter " << iter << " fault " << injected_fault_name(fault);
        continue;
      }
      ASSERT_EQ(outcomes[i].status, CellStatus::kOk) << "iter " << iter;
      auto [it, fresh] =
          unsupervised.try_emplace(outcomes[i].cache_key, std::string());
      if (fresh) it->second = digest(run_experiment(sweep.cells[i].spec));
      EXPECT_EQ(digest(outcomes[i].result), it->second)
          << "iter " << iter << " cell " << sweep.cells[i].name;
    }

    // Resume without the injection: journaled-ok cells are served, the
    // failed victim re-runs clean, and every digest matches.
    SweepExecutor resumed(opts);
    const auto resumed_outcomes = resumed.run(sweep);
    EXPECT_EQ(resumed.summary().failed, 0) << "iter " << iter;
    EXPECT_EQ(resumed.summary().resumed,
              static_cast<int>(sweep.cells.size()) - 1)
        << "iter " << iter;
    for (size_t i = 0; i < resumed_outcomes.size(); ++i) {
      ASSERT_EQ(resumed_outcomes[i].status, CellStatus::kOk);
      auto [it, fresh] = unsupervised.try_emplace(
          resumed_outcomes[i].cache_key, std::string());
      if (fresh) it->second = digest(run_experiment(sweep.cells[i].spec));
      EXPECT_EQ(digest(resumed_outcomes[i].result), it->second)
          << "iter " << iter << " resumed cell " << sweep.cells[i].name;
    }
  }
}

}  // namespace
}  // namespace ccas::sweep
