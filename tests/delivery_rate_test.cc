#include "src/tcp/delivery_rate.h"

#include <gtest/gtest.h>

namespace ccas {
namespace {

TEST(DeliveryRate, NoSampleBeforeDelivery) {
  DeliveryRateEstimator est;
  EXPECT_FALSE(est.take_sample(Time::zero(), TimeDelta::millis(1)).valid());
}

TEST(DeliveryRate, SteadyAckClockMeasuresTrueRate) {
  // Send one segment every 10 ms; each is delivered 20 ms after it was
  // sent (2 segments always in flight). Sends and deliveries interleave on
  // one timeline, as in a live sender. The measured rate must converge to
  // 1 segment / 10 ms.
  DeliveryRateEstimator est;
  const TimeDelta gap = TimeDelta::millis(10);
  std::vector<SegmentState> segs(100);
  RateSample last;
  for (int i = 0; i < 100; ++i) {
    const Time t = Time::zero() + gap * i;
    // Delivery of segment i-2 happens at t (sent at t-20ms).
    if (i >= 2) {
      est.on_packet_delivered(t, segs[i - 2]);
      const RateSample rs = est.take_sample(t, TimeDelta::millis(1));
      if (i > 6) {
        ASSERT_TRUE(rs.valid()) << i;
        last = rs;
        const double expect_mbps = static_cast<double>(kMssBytes) * 8.0 / gap.sec() / 1e6;
        EXPECT_NEAR(rs.delivery_rate.mbps_f(), expect_mbps, expect_mbps * 0.02);
      }
    }
    est.on_packet_sent(t, segs[i], /*pipe_was_empty=*/i == 0);
    segs[i].last_sent = t;
  }
  EXPECT_EQ(est.delivered(), 98u);
  EXPECT_GT(last.prior_delivered, 90u);
}

TEST(DeliveryRate, RejectsSamplesShorterThanMinRtt) {
  DeliveryRateEstimator est;
  SegmentState s1;
  est.on_packet_sent(Time::zero(), s1, true);
  s1.last_sent = Time::zero();
  est.on_packet_delivered(Time::zero() + TimeDelta::millis(2), s1);
  // Interval 2 ms < min_rtt 20 ms: rejected as ACK-clustering noise.
  EXPECT_FALSE(est.take_sample(Time::zero() + TimeDelta::millis(2),
                               TimeDelta::millis(20))
                   .valid());
}

TEST(DeliveryRate, MinRttRejectionBoundaryIsStrict) {
  // Linux tcp_rate_gen rejects interval < min_rtt, strictly: an interval of
  // exactly min_rtt is a legitimate one-RTT sample and must be accepted.
  // Locks the `<` (not `<=`) in take_sample.
  const TimeDelta min_rtt = TimeDelta::millis(20);
  {
    DeliveryRateEstimator est;
    SegmentState s;
    est.on_packet_sent(Time::zero(), s, /*pipe_was_empty=*/true);
    s.last_sent = Time::zero();
    const Time ack = Time::zero() + min_rtt;  // interval == min_rtt exactly
    est.on_packet_delivered(ack, s);
    EXPECT_TRUE(est.take_sample(ack, min_rtt).valid());
  }
  {
    DeliveryRateEstimator est;
    SegmentState s;
    est.on_packet_sent(Time::zero(), s, /*pipe_was_empty=*/true);
    s.last_sent = Time::zero();
    const Time ack = Time::zero() + min_rtt - TimeDelta::nanos(1);
    est.on_packet_delivered(ack, s);
    EXPECT_FALSE(est.take_sample(ack, min_rtt).valid());
  }
}

TEST(DeliveryRate, InfiniteMinRttDisablesRejection) {
  // Before the first RTT sample min_rtt is infinite; the rejection is
  // explicitly skipped then (otherwise no sample could ever be taken).
  DeliveryRateEstimator est;
  SegmentState s;
  est.on_packet_sent(Time::zero(), s, /*pipe_was_empty=*/true);
  s.last_sent = Time::zero();
  const Time ack = Time::zero() + TimeDelta::micros(5);
  est.on_packet_delivered(ack, s);
  EXPECT_TRUE(est.take_sample(ack, TimeDelta::infinite()).valid());
}

TEST(DeliveryRate, SampleConsumedOncePerAck) {
  // take_sample resets per-ACK state: the second call for the same ACK
  // must return invalid rather than re-emitting (BBR would double-count).
  DeliveryRateEstimator est;
  SegmentState s;
  est.on_packet_sent(Time::zero(), s, /*pipe_was_empty=*/true);
  s.last_sent = Time::zero();
  const Time ack = Time::zero() + TimeDelta::millis(30);
  est.on_packet_delivered(ack, s);
  EXPECT_TRUE(est.take_sample(ack, TimeDelta::millis(20)).valid());
  EXPECT_FALSE(est.take_sample(ack, TimeDelta::millis(20)).valid());
}

TEST(DeliveryRate, BurstDeliveryUsesSendInterval) {
  // Segments sent over 100 ms but all delivered in one burst ACK: the rate
  // must reflect the (slower) send interval, not the ACK burst.
  DeliveryRateEstimator est;
  std::vector<SegmentState> segs(11);
  for (int i = 0; i <= 10; ++i) {
    const Time sent = Time::zero() + TimeDelta::millis(10) * i;
    est.on_packet_sent(sent, segs[i], i == 0);
    segs[i].last_sent = sent;
  }
  const Time ack_time = Time::zero() + TimeDelta::millis(120);
  for (int i = 0; i <= 10; ++i) est.on_packet_delivered(ack_time, segs[i]);
  const RateSample rs = est.take_sample(ack_time, TimeDelta::millis(1));
  ASSERT_TRUE(rs.valid());
  // 10 segments delivered since the last sampled packet's send snapshot
  // (prior_delivered = 1 from segment 10's send time? The adopted sample is
  // the last-sent segment: delivered_delta = 11 - 0 ... send interval 100ms).
  // The key property: measured rate <= segments/send-window, i.e. no
  // burst inflation beyond ~1 segment per 10 ms.
  const double per_10ms = rs.delivery_rate.bits_per_sec() / 8.0 /
                          static_cast<double>(kMssBytes) * 0.010;
  EXPECT_LE(per_10ms, 1.6);
}

TEST(DeliveryRate, IdleRestartResetsClocks) {
  DeliveryRateEstimator est;
  SegmentState a;
  est.on_packet_sent(Time::zero(), a, true);
  a.last_sent = Time::zero();
  est.on_packet_delivered(Time::zero() + TimeDelta::millis(20), a);
  (void)est.take_sample(Time::zero() + TimeDelta::millis(20), TimeDelta::millis(1));
  // Long idle, then restart: the idle gap must not count as send time.
  SegmentState b;
  const Time restart = Time::zero() + TimeDelta::seconds(10);
  est.on_packet_sent(restart, b, /*pipe_was_empty=*/true);
  b.last_sent = restart;
  est.on_packet_delivered(restart + TimeDelta::millis(20), b);
  const RateSample rs =
      est.take_sample(restart + TimeDelta::millis(20), TimeDelta::millis(1));
  ASSERT_TRUE(rs.valid());
  EXPECT_LE(rs.interval, TimeDelta::millis(25));
}

}  // namespace
}  // namespace ccas
