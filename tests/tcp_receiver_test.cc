#include "src/tcp/tcp_receiver.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/net/topology.h"

namespace ccas {
namespace {

class AckCollector : public PacketSink {
 public:
  explicit AckCollector(Simulator& sim) : sim_(sim) {}
  void accept(Packet&& pkt) override {
    acks.push_back(pkt);
    times.push_back(sim_.now());
  }
  std::vector<Packet> acks;
  std::vector<Time> times;

 private:
  Simulator& sim_;
};

Packet data(uint32_t flow, uint64_t seq) {
  return Packet::make_data(flow, DumbbellTopology::kToReceivers, seq, false);
}

// Plain-TCP fixture: GRO off so the classic per-segment delayed-ACK
// behaviour is observable (GRO-specific tests construct their own config).
struct ReceiverFixture {
  static TcpReceiverConfig no_gro(TcpReceiverConfig cfg) {
    cfg.gro_enabled = false;
    return cfg;
  }
  explicit ReceiverFixture(const TcpReceiverConfig& cfg = {})
      : acks(sim), rcv(sim, 1, &acks, no_gro(cfg)) {}
  Simulator sim;
  AckCollector acks;
  TcpReceiver rcv;
};

TEST(TcpReceiver, InOrderDataWithDelayedAcks) {
  ReceiverFixture f;
  f.rcv.accept(data(1, 0));
  EXPECT_TRUE(f.acks.acks.empty());  // first segment: delayed
  f.rcv.accept(data(1, 1));
  ASSERT_EQ(f.acks.acks.size(), 1u);  // second segment triggers the ACK
  EXPECT_EQ(f.acks.acks[0].ack_seq, 2u);
  EXPECT_EQ(f.acks.acks[0].num_sacks, 0);
  EXPECT_EQ(f.rcv.rcv_nxt(), 2u);
}

TEST(TcpReceiver, DelackTimerFlushesSingleSegment) {
  ReceiverFixture f;
  f.rcv.accept(data(1, 0));
  EXPECT_TRUE(f.acks.acks.empty());
  f.sim.run();  // the 40 ms delack timer fires
  ASSERT_EQ(f.acks.acks.size(), 1u);
  EXPECT_EQ(f.acks.acks[0].ack_seq, 1u);
  EXPECT_EQ(f.acks.times[0], Time::zero() + TimeDelta::millis(40));
}

TEST(TcpReceiver, OutOfOrderTriggersImmediateDupackWithSack) {
  ReceiverFixture f;
  f.rcv.accept(data(1, 0));
  f.rcv.accept(data(1, 2));  // hole at 1 -> immediate dupack
  ASSERT_EQ(f.acks.acks.size(), 1u);
  const Packet& ack = f.acks.acks[0];
  EXPECT_EQ(ack.ack_seq, 1u);
  ASSERT_EQ(ack.num_sacks, 1);
  EXPECT_EQ(ack.sack(0).start, 2u);
  EXPECT_EQ(ack.sack(0).end, 3u);
}

TEST(TcpReceiver, HoleFillTriggersImmediateCumulativeAck) {
  ReceiverFixture f;
  f.rcv.accept(data(1, 0));
  f.rcv.accept(data(1, 2));
  f.rcv.accept(data(1, 3));
  f.rcv.accept(data(1, 1));  // fills the hole
  const Packet& last = f.acks.acks.back();
  EXPECT_EQ(last.ack_seq, 4u);
  EXPECT_EQ(last.num_sacks, 0);
  EXPECT_EQ(f.rcv.rcv_nxt(), 4u);
  EXPECT_EQ(f.rcv.out_of_order_ranges(), 0u);
}

TEST(TcpReceiver, ReportsUpToThreeSackBlocksMostRelevantFirst) {
  ReceiverFixture f;
  f.rcv.accept(data(1, 0));
  // Build four disjoint out-of-order ranges: 2, 4, 6, 8.
  f.rcv.accept(data(1, 2));
  f.rcv.accept(data(1, 4));
  f.rcv.accept(data(1, 6));
  f.rcv.accept(data(1, 8));
  const Packet& ack = f.acks.acks.back();
  EXPECT_EQ(ack.ack_seq, 1u);
  ASSERT_EQ(ack.num_sacks, 3);
  // First block holds the triggering segment (8).
  EXPECT_EQ(ack.sack(0).start, 8u);
  // Remaining slots: lowest ranges.
  EXPECT_EQ(ack.sack(1).start, 2u);
  EXPECT_EQ(ack.sack(2).start, 4u);
}

TEST(TcpReceiver, MergesAdjacentOutOfOrderRanges) {
  ReceiverFixture f;
  f.rcv.accept(data(1, 5));
  f.rcv.accept(data(1, 7));
  EXPECT_EQ(f.rcv.out_of_order_ranges(), 2u);
  f.rcv.accept(data(1, 6));  // bridges 5..6 and 7..8
  EXPECT_EQ(f.rcv.out_of_order_ranges(), 1u);
  const Packet& ack = f.acks.acks.back();
  ASSERT_GE(ack.num_sacks, 1);
  EXPECT_EQ(ack.sack(0).start, 5u);
  EXPECT_EQ(ack.sack(0).end, 8u);
}

TEST(TcpReceiver, DuplicatesAreCountedAndAckedImmediately) {
  ReceiverFixture f;
  f.rcv.accept(data(1, 0));
  f.rcv.accept(data(1, 1));
  const size_t acks_before = f.acks.acks.size();
  f.rcv.accept(data(1, 0));  // duplicate of delivered data
  EXPECT_EQ(f.rcv.duplicate_segments(), 1u);
  EXPECT_EQ(f.acks.acks.size(), acks_before + 1);
  f.rcv.accept(data(1, 5));
  f.rcv.accept(data(1, 5));  // duplicate of buffered out-of-order data
  EXPECT_EQ(f.rcv.duplicate_segments(), 2u);
}

TEST(TcpReceiver, PerPacketAckModeWhenDelackDisabled) {
  TcpReceiverConfig cfg;
  cfg.delayed_ack = false;
  ReceiverFixture f(cfg);
  f.rcv.accept(data(1, 0));
  f.rcv.accept(data(1, 1));
  f.rcv.accept(data(1, 2));
  EXPECT_EQ(f.acks.acks.size(), 3u);
}

TEST(TcpReceiver, GoodputCountsInOrderBytes) {
  ReceiverFixture f;
  for (uint64_t s = 0; s < 10; ++s) f.rcv.accept(data(1, s));
  f.rcv.accept(data(1, 15));  // buffered, not in-order
  EXPECT_EQ(f.rcv.goodput_bytes(), 10 * kMssBytes);
  EXPECT_EQ(f.rcv.segments_received(), 11u);
}

TEST(TcpReceiver, IgnoresAckPackets) {
  ReceiverFixture f;
  f.rcv.accept(Packet::make_ack(1, DumbbellTopology::kToSenders, 5));
  EXPECT_EQ(f.rcv.segments_received(), 0u);
  EXPECT_TRUE(f.acks.acks.empty());
}

// Sweep the delack threshold: an ACK must be emitted every `threshold`
// in-order segments.
class DelackThreshold : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DelackThreshold, AcksEveryNthSegment) {
  TcpReceiverConfig cfg;
  cfg.delack_segment_threshold = GetParam();
  ReceiverFixture f(cfg);
  for (uint64_t s = 0; s < 30; ++s) f.rcv.accept(data(1, s));
  EXPECT_EQ(f.acks.acks.size(), 30u / GetParam());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, DelackThreshold, ::testing::Values(1u, 2u, 3u, 5u));

// ------------------------------------------------------------- GRO -------

struct GroFixture {
  explicit GroFixture(TcpReceiverConfig cfg = {})
      : acks(sim), rcv(sim, 1, &acks, cfg) {}
  Simulator sim;
  AckCollector acks;
  TcpReceiver rcv;
};

TEST(TcpReceiverGro, BackToBackBurstProducesOneAck) {
  GroFixture f;
  // A 10-segment burst arriving back-to-back (same instant).
  for (uint64_t s = 0; s < 10; ++s) f.rcv.accept(data(1, s));
  EXPECT_TRUE(f.acks.acks.empty());  // batch still open
  f.sim.run();                       // 20 us flush timer fires
  ASSERT_EQ(f.acks.acks.size(), 1u);
  EXPECT_EQ(f.acks.acks[0].ack_seq, 10u);
}

TEST(TcpReceiverGro, SlowArrivalsDoNotAggregate) {
  GroFixture f;
  // 120 us spacing (EdgeScale serialization) exceeds the 20 us flush
  // timeout: behaves like plain delayed ACKs (one ACK per 2 segments).
  for (uint64_t s = 0; s < 8; ++s) {
    f.rcv.accept(data(1, s));
    f.sim.run_until(f.sim.now() + TimeDelta::micros(120));
  }
  EXPECT_EQ(f.acks.acks.size(), 4u);
}

TEST(TcpReceiverGro, BatchCapFlushesEagerly) {
  TcpReceiverConfig cfg;
  cfg.gro_max_segments = 4;
  GroFixture f(cfg);
  for (uint64_t s = 0; s < 8; ++s) f.rcv.accept(data(1, s));
  // Two full batches of 4 flushed inline, no timer needed.
  EXPECT_EQ(f.acks.acks.size(), 2u);
  EXPECT_EQ(f.acks.acks[1].ack_seq, 8u);
}

TEST(TcpReceiverGro, OutOfOrderFlushesAndDupacksImmediately) {
  GroFixture f;
  f.rcv.accept(data(1, 0));
  f.rcv.accept(data(1, 1));
  f.rcv.accept(data(1, 3));  // gap: must dupack immediately
  ASSERT_GE(f.acks.acks.size(), 1u);
  const Packet& ack = f.acks.acks.back();
  EXPECT_EQ(ack.ack_seq, 2u);
  ASSERT_EQ(ack.num_sacks, 1);
  EXPECT_EQ(ack.sack(0).start, 3u);
}

}  // namespace
}  // namespace ccas

namespace ccas {
namespace {

}  // namespace
}  // namespace ccas
