#include "src/cca/cubic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ccas {
namespace {

AckEvent ack_at(Time now, uint64_t acked, TimeDelta min_rtt = TimeDelta::millis(20)) {
  AckEvent ev;
  ev.now = now;
  ev.newly_acked = acked;
  ev.min_rtt = min_rtt;
  return ev;
}

TEST(Cubic, StartsInSlowStart) {
  Cubic cubic;
  EXPECT_EQ(cubic.cwnd(), 10u);
  EXPECT_TRUE(cubic.in_slow_start());
  EXPECT_EQ(cubic.name(), "cubic");
}

TEST(Cubic, SlowStartGrowsByAcked) {
  Cubic cubic;
  cubic.on_ack(ack_at(Time::zero(), 10));
  EXPECT_EQ(cubic.cwnd(), 20u);
}

TEST(Cubic, ReductionUsesBeta07) {
  Cubic cubic;
  cubic.on_ack(ack_at(Time::zero(), 90));  // cwnd 100
  cubic.on_congestion_event(Time::zero(), 100);
  EXPECT_EQ(cubic.cwnd(), 70u);  // beta = 0.7 (RFC 8312)
  EXPECT_DOUBLE_EQ(cubic.w_max(), 100.0);
}

TEST(Cubic, FastConvergenceShrinksWmax) {
  Cubic cubic;
  cubic.on_ack(ack_at(Time::zero(), 90));  // cwnd 100
  cubic.on_congestion_event(Time::zero(), 100);  // w_max 100, cwnd 70
  // Second reduction below the previous w_max: fast convergence kicks in,
  // w_max = cwnd * (2 - beta)/2 = 70 * 0.65 = 45.5.
  cubic.on_congestion_event(Time::zero(), 70);
  EXPECT_NEAR(cubic.w_max(), 45.5, 1e-9);
  EXPECT_EQ(cubic.cwnd(), 49u);  // 70 * 0.7
}

TEST(Cubic, KMatchesRfc8312Formula) {
  Cubic cubic;
  cubic.on_ack(ack_at(Time::zero(), 990));  // cwnd 1000
  cubic.on_congestion_event(Time::zero(), 1000);
  // First CA ack starts the epoch.
  AckEvent ev = ack_at(Time::zero() + TimeDelta::millis(20), 1);
  cubic.on_ack(ev);
  // K = cbrt(W_max * (1 - beta) / C) = cbrt(1000 * 0.3 / 0.4) = cbrt(750).
  EXPECT_NEAR(cubic.k_seconds(), std::cbrt(750.0), 1e-9);
}

TEST(Cubic, ConcaveThenConvexGrowth) {
  // After a reduction, growth should be fast initially (far below W_max),
  // slow near W_max (plateau at t ~= K), then accelerate past it. The
  // TCP-friendly region is disabled to expose the pure cubic shape (at a
  // 20 ms RTT the Reno estimate would otherwise dominate early growth).
  CubicConfig cfg;
  cfg.tcp_friendliness = false;
  Cubic cubic(cfg);
  cubic.on_ack(ack_at(Time::zero(), 990));        // cwnd 1000
  cubic.on_congestion_event(Time::zero(), 1000);  // cwnd 700, K = cbrt(750) ~= 9.09 s

  Time t = Time::zero();
  const TimeDelta rtt = TimeDelta::millis(20);
  auto run_for = [&](double seconds) {
    const uint64_t before = cubic.cwnd();
    const int rounds = static_cast<int>(seconds / rtt.sec());
    for (int i = 0; i < rounds; ++i) {
      t += rtt;
      cubic.on_ack(ack_at(t, std::max<uint64_t>(cubic.cwnd(), 1), rtt));
    }
    return cubic.cwnd() - before;
  };

  const uint64_t early = run_for(2.0);  // t in [0, 2]: steep concave
  run_for(3.0);                         // t in [2, 5]
  const uint64_t near_plateau = run_for(2.0);  // t in [5, 7]: flattening
  // Analytically: W_cubic gains ~157 segments in [0,2] but only ~24 in
  // [5,7] (K ~= 9.09 s), so the same-width window must show a big drop.
  EXPECT_GT(early, near_plateau * 2) << "growth must decelerate approaching W_max";
  // Window returns to ~W_max around t = K.
  run_for(3.0);  // t ~= 10 > K
  EXPECT_NEAR(static_cast<double>(cubic.cwnd()), 1000.0, 120.0);
  // Convex region: growth accelerates again.
  const uint64_t past1 = run_for(2.0);
  const uint64_t past2 = run_for(2.0);
  EXPECT_GT(past2, past1);
}

TEST(Cubic, TcpFriendlyRegionFollowsRenoAtSmallWindows) {
  // At small windows and short RTTs, W_est exceeds the cubic curve, so
  // CUBIC grows at least as fast as Reno would (alpha ~= 0.53/round).
  Cubic cubic;
  cubic.on_ack(ack_at(Time::zero(), 20));       // cwnd 30
  cubic.on_congestion_event(Time::zero(), 30);  // cwnd 21
  Time t = Time::zero();
  const TimeDelta rtt = TimeDelta::millis(10);
  const uint64_t start = cubic.cwnd();
  for (int i = 0; i < 100; ++i) {
    t += rtt;
    cubic.on_ack(ack_at(t, cubic.cwnd(), rtt));
  }
  // 100 rounds of Reno-emulation at alpha = 0.53: ~+53 segments. The pure
  // cubic term over 1 second with W_max 30 would add only ~cbrt-scale
  // growth, so exceeding +40 proves the friendly region is active.
  EXPECT_GE(cubic.cwnd(), start + 40);
}

TEST(Cubic, RtoResetsEpochAndWindow) {
  Cubic cubic;
  cubic.on_ack(ack_at(Time::zero(), 90));
  cubic.on_rto(Time::zero());
  EXPECT_EQ(cubic.cwnd(), 1u);
  EXPECT_EQ(cubic.ssthresh(), 70u);
  EXPECT_DOUBLE_EQ(cubic.w_max(), 0.0);
  EXPECT_TRUE(cubic.in_slow_start());
}

TEST(Cubic, NoGrowthDuringRecovery) {
  Cubic cubic;
  AckEvent ev = ack_at(Time::zero(), 10);
  ev.in_recovery = true;
  cubic.on_ack(ev);
  EXPECT_EQ(cubic.cwnd(), 10u);
}

TEST(Cubic, MinCwndFloor) {
  Cubic cubic;
  for (int i = 0; i < 20; ++i) cubic.on_congestion_event(Time::zero(), 2);
  EXPECT_GE(cubic.cwnd(), 2u);
}

// Property: the cubic window function is monotonically non-decreasing in
// time between congestion events, for several starting windows.
class CubicMonotone : public ::testing::TestWithParam<int> {};

TEST_P(CubicMonotone, WindowNeverShrinksWithoutLoss) {
  Cubic cubic;
  cubic.on_ack(ack_at(Time::zero(), GetParam() - 10));
  cubic.on_congestion_event(Time::zero(), cubic.cwnd());
  Time t = Time::zero();
  uint64_t prev = cubic.cwnd();
  for (int i = 0; i < 2000; ++i) {
    t += TimeDelta::millis(20);
    cubic.on_ack(ack_at(t, std::max<uint64_t>(prev / 2, 1)));
    EXPECT_GE(cubic.cwnd(), prev);
    prev = cubic.cwnd();
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, CubicMonotone, ::testing::Values(50, 200, 1000, 5000));

}  // namespace
}  // namespace ccas
