// Property tests for the open-loop workload engine (src/workload/):
// ~200 random configurations covering distribution moments, Poisson
// arrival statistics, same-seed byte-identical replay, serial-vs-sharded
// and jobs-level result equality, and conservation under the auditor.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/harness/runner.h"
#include "src/sweep/executor.h"
#include "src/sweep/result_cache.h"
#include "src/sweep/spec_hash.h"
#include "src/util/rng.h"
#include "src/workload/spec.h"

namespace ccas {
namespace {

// ------------------------------------------ size-distribution moments ----

SizeDist random_pareto(Rng& rng) {
  SizeDist d;
  d.kind = SizeDistKind::kPareto;
  d.pareto_alpha = 1.1 + rng.next_double() * 1.9;  // [1.1, 3.0]
  d.min_segments = 4 + static_cast<uint64_t>(rng.next_double() * 46.0);
  d.max_segments =
      d.min_segments * (10 + static_cast<uint64_t>(rng.next_double() * 490.0));
  return d;
}

SizeDist random_lognormal(Rng& rng) {
  SizeDist d;
  d.kind = SizeDistKind::kLognormal;
  // Parameters keep the [min, max] clamp and the floor-discretization
  // small next to the mean (see analytic_mean_segments' contract).
  d.lognormal_mu = 2.5 + rng.next_double() * 2.5;   // mean >= e^2.5 ~ 12
  d.lognormal_sigma = 0.3 + rng.next_double() * 0.9;
  d.min_segments = 1;
  d.max_segments = 1u << 20;
  return d;
}

SizeDist random_empirical(Rng& rng) {
  SizeDist d;
  d.kind = SizeDistKind::kEmpirical;
  double cum = 0.0;
  const int steps = 2 + static_cast<int>(rng.next_double() * 6.0);
  uint64_t segments = 1;
  for (int i = 0; i < steps; ++i) {
    cum += (1.0 - cum) * (0.2 + 0.6 * rng.next_double());
    segments += 1 + static_cast<uint64_t>(rng.next_double() * 500.0);
    d.empirical.push_back({i == steps - 1 ? 1.0 : cum, segments});
  }
  d.empirical.back().cum_prob = 1.0;
  d.min_segments = d.empirical.front().segments;
  d.max_segments = d.empirical.back().segments;
  return d;
}

TEST(WorkloadProperty, SampledMomentsMatchAnalytic) {
  Rng meta(20260808);
  int configs = 0;
  for (int i = 0; i < 150; ++i) {
    SizeDist d;
    const double pick = meta.next_double();
    if (pick < 0.4) {
      d = random_pareto(meta);
    } else if (pick < 0.8) {
      d = random_lognormal(meta);
    } else {
      d = random_empirical(meta);
    }
    ASSERT_NO_THROW(d.validate());
    ++configs;

    Rng rng(1000 + static_cast<uint64_t>(i));
    const int n = 20000;
    double sum = 0.0;
    for (int k = 0; k < n; ++k) {
      const uint64_t s = d.sample(rng);
      ASSERT_GE(s, d.min_segments);
      ASSERT_LE(s, d.max_segments);
      sum += static_cast<double>(s);
    }
    const double mean = sum / n;
    const double analytic = d.analytic_mean_segments();
    ASSERT_GT(analytic, 0.0);
    // Sampling error (heavy tails!) + floor-discretization (< 1 segment)
    // + the Irwin-Hall tail truncation; 15% relative plus one segment of
    // absolute slack holds for every parameter box above.
    EXPECT_NEAR(mean, analytic, 0.15 * analytic + 1.0)
        << "config " << i << " kind " << static_cast<int>(d.kind);
  }
  EXPECT_EQ(configs, 150);
}

// ----------------------------------------------- arrival-process stats ----

ExperimentSpec tiny_workload_spec(uint64_t seed) {
  ExperimentSpec spec;
  spec.scenario = Scenario::edge_scale();
  spec.scenario.net.bottleneck_rate = DataRate::mbps(50);
  spec.scenario.net.buffer_bytes = 250'000;
  spec.scenario.stagger = TimeDelta::zero();
  spec.scenario.warmup = TimeDelta::millis(200);
  spec.scenario.measure = TimeDelta::millis(1500);
  spec.seed = seed;
  WorkloadClass c;
  c.name = "w";
  c.weight = 1.0;
  c.cca = "cubic";
  c.rtt = TimeDelta::millis(10);
  c.size.kind = SizeDistKind::kFixed;
  c.size.fixed_segments = 2;
  c.size.min_segments = 2;
  c.size.max_segments = 2;
  spec.workload.classes.push_back(c);
  spec.workload.arrival = ArrivalKind::kPoisson;
  spec.workload.arrivals_per_sec = 400.0;
  return spec;
}

uint64_t total_arrivals(const ExperimentResult& r) {
  uint64_t n = 0;
  for (const WorkloadClassResult& c : r.workload_classes) n += c.arrivals;
  return n;
}

TEST(WorkloadProperty, PoissonCountsAreDispersedLikePoisson) {
  // For a Poisson process the arrival count over a fixed horizon has
  // variance equal to its mean (index of dispersion 1; equivalently the
  // inter-arrival CV is 1). Deterministic arrivals have dispersion ~0.
  std::vector<double> counts;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    const ExperimentSpec spec = tiny_workload_spec(seed);
    counts.push_back(static_cast<double>(total_arrivals(run_experiment(spec))));
  }
  double mean = 0.0;
  for (const double c : counts) mean += c;
  mean /= static_cast<double>(counts.size());
  double var = 0.0;
  for (const double c : counts) var += (c - mean) * (c - mean);
  var /= static_cast<double>(counts.size() - 1);
  // Expected count = rate * horizon = 400/s * 1.7s = 680.
  EXPECT_NEAR(mean, 680.0, 60.0);
  const double dispersion = var / mean;
  EXPECT_GT(dispersion, 0.4);
  EXPECT_LT(dispersion, 1.8);
}

TEST(WorkloadProperty, DeterministicArrivalsAreExactlyPaced) {
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    ExperimentSpec spec = tiny_workload_spec(seed);
    spec.workload.arrival = ArrivalKind::kDeterministic;
    const uint64_t n = total_arrivals(run_experiment(spec));
    // First arrival at t=0, then every 2.5ms until the 1.7s horizon.
    EXPECT_GE(n, 680u);
    EXPECT_LE(n, 681u);
  }
}

// --------------------------------------------------- replay and shards ----

// Random mixed config: optional background groups, 1-3 classes spanning
// the app models and size kinds, random rates and caps.
ExperimentSpec random_workload_spec(Rng& rng, bool with_groups) {
  ExperimentSpec spec;
  spec.scenario = Scenario::edge_scale();
  spec.scenario.net.bottleneck_rate = DataRate::mbps(40);
  spec.scenario.net.buffer_bytes = 200'000;
  spec.scenario.stagger = with_groups ? TimeDelta::millis(100) : TimeDelta::zero();
  spec.scenario.warmup = TimeDelta::millis(300);
  spec.scenario.measure = TimeDelta::seconds(2);
  spec.seed = 1 + static_cast<uint64_t>(rng.next_double() * 1e6);
  if (with_groups) {
    spec.groups.push_back(FlowGroup{"cubic", 2, TimeDelta::millis(20)});
    spec.groups.push_back(FlowGroup{"newreno", 2, TimeDelta::millis(40)});
  }
  spec.workload.arrival =
      rng.next_double() < 0.5 ? ArrivalKind::kPoisson : ArrivalKind::kDeterministic;
  spec.workload.arrivals_per_sec = 30.0 + rng.next_double() * 120.0;
  if (rng.next_double() < 0.3) spec.workload.max_concurrent = 32;

  const int nclasses = 1 + static_cast<int>(rng.next_double() * 3.0);
  const char* ccas[] = {"cubic", "newreno", "bbr", "bbr2"};
  for (int c = 0; c < nclasses; ++c) {
    WorkloadClass cls;
    cls.name = "c" + std::to_string(c);
    cls.weight = 1.0 / nclasses;
    cls.cca = ccas[static_cast<int>(rng.next_double() * 4.0)];
    cls.rtt = TimeDelta::millis(10 + static_cast<int64_t>(rng.next_double() * 70.0));
    const double sz = rng.next_double();
    if (sz < 0.4) {
      cls.size = random_pareto(rng);
      cls.size.max_segments = std::min<uint64_t>(cls.size.max_segments, 2000);
    } else if (sz < 0.7) {
      cls.size = random_lognormal(rng);
      cls.size.max_segments = 2000;
    } else {
      cls.size.kind = SizeDistKind::kFixed;
      cls.size.fixed_segments = 5 + static_cast<uint64_t>(rng.next_double() * 95.0);
      cls.size.min_segments = cls.size.fixed_segments;
      cls.size.max_segments = cls.size.fixed_segments;
    }
    const double app = rng.next_double();
    if (app < 0.4) {
      cls.app = AppModel::kBulk;
    } else if (app < 0.6) {
      cls.app = AppModel::kRequestResponse;
      cls.app_burst_segments = 4;
      cls.app_gap = TimeDelta::millis(10);
    } else if (app < 0.8) {
      cls.app = AppModel::kWebObject;
      cls.app_burst_segments = 8;
      cls.app_gap = TimeDelta::millis(5);
    } else {
      cls.app = AppModel::kVideoChunk;
      cls.app_burst_segments = 16;
      cls.app_gap = TimeDelta::millis(40);
    }
    spec.workload.classes.push_back(cls);
  }
  // Float sums can miss 1.0 by an ulp; validate() tolerates 1e-9 and the
  // last class absorbs the remainder exactly like the CLI path.
  double sum = 0.0;
  for (size_t c = 0; c + 1 < spec.workload.classes.size(); ++c) {
    sum += spec.workload.classes[c].weight;
  }
  spec.workload.classes.back().weight = 1.0 - sum;
  return spec;
}

TEST(WorkloadProperty, SameSeedReplayIsByteIdentical) {
  Rng meta(99);
  for (int i = 0; i < 8; ++i) {
    const ExperimentSpec spec = random_workload_spec(meta, i % 2 == 0);
    const std::string a = sweep::serialize_result(run_experiment(spec));
    const std::string b = sweep::serialize_result(run_experiment(spec));
    EXPECT_EQ(a, b) << "config " << i;
    EXPECT_FALSE(a.empty());
  }
}

TEST(WorkloadProperty, SerialAndShardedRunsAreByteIdentical) {
  Rng meta(777);
  for (int i = 0; i < 4; ++i) {
    ExperimentSpec spec = random_workload_spec(meta, /*with_groups=*/true);
    spec.shards = 1;
    const std::string serial = sweep::serialize_result(run_experiment(spec));
    for (const int shards : {2, 4}) {
      spec.shards = shards;
      ExperimentResult r = run_experiment(spec);
      // The shards field enters the canonical spec encoding, so compare
      // result payloads (what the digest wall hashes), not cache keys.
      EXPECT_EQ(serial, sweep::serialize_result(r))
          << "config " << i << " shards " << shards;
    }
  }
}

TEST(WorkloadProperty, JobsLevelDoesNotChangeResults) {
  // Same 4-cell sweep at --jobs=1 and --jobs=4: byte-identical payloads.
  Rng meta(31337);
  sweep::SweepSpec grid;
  grid.name = "workload-jobs-prop";
  for (int i = 0; i < 4; ++i) {
    grid.add_cell("cell" + std::to_string(i),
                  random_workload_spec(meta, i % 2 == 0));
  }
  sweep::SweepOptions one;
  one.jobs = 1;
  one.progress = false;
  sweep::SweepOptions four;
  four.jobs = 4;
  four.progress = false;
  const auto a = sweep::SweepExecutor(one).run(grid);
  const auto b = sweep::SweepExecutor(four).run(grid);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].status, sweep::CellStatus::kOk);
    ASSERT_EQ(b[i].status, sweep::CellStatus::kOk);
    EXPECT_EQ(sweep::serialize_result(a[i].result),
              sweep::serialize_result(b[i].result))
        << grid.cells[i].name;
  }
}

TEST(WorkloadProperty, ConservationHoldsUnderAudit) {
  // The invariant auditor (CCAS_CHECK=1 path) throws on any sequence or
  // conservation violation; dynamic app-limited flows must pass it, with
  // and without loss/reordering in the way.
  Rng meta(4242);
  for (int i = 0; i < 3; ++i) {
    ExperimentSpec spec = random_workload_spec(meta, i > 0);
    spec.audit = true;
    if (i == 2) {
      spec.scenario.net.impairments.loss = 0.005;
      spec.scenario.net.impairments.reorder = 0.005;
      spec.scenario.net.impairments.reorder_delay = TimeDelta::millis(2);
    }
    ExperimentResult r;
    ASSERT_NO_THROW(r = run_experiment(spec)) << "config " << i;
    uint64_t completed = 0;
    uint64_t arrivals = 0;
    uint64_t rejected = 0;
    uint64_t abandoned = 0;
    for (const WorkloadClassResult& c : r.workload_classes) {
      completed += c.completed;
      arrivals += c.arrivals;
      rejected += c.rejected;
      abandoned += c.abandoned;
    }
    // Every arrival is rejected, completed, or still in flight at the end.
    EXPECT_EQ(arrivals, rejected + completed + abandoned);
    EXPECT_GT(completed, 0u);
  }
}

// ----------------------------------------------- encoding differential ----

TEST(WorkloadSpecBytes, DisabledWorkloadKeepsSpecBytes) {
  // A workload block that is not enabled must leave the canonical spec
  // encoding untouched — that is the invariant the 12 pre-workload golden
  // digests and every cache key rest on.
  ExperimentSpec spec;
  spec.scenario = Scenario::edge_scale();
  spec.groups.push_back(FlowGroup{"cubic", 2, TimeDelta::millis(20)});
  const std::string before = sweep::canonical_spec_bytes(spec);

  ExperimentSpec poked = spec;
  poked.workload.max_concurrent = 500;  // inert without a rate
  EXPECT_EQ(sweep::canonical_spec_bytes(poked), before);

  poked = spec;
  WorkloadClass c;
  poked.workload.classes.push_back(c);  // classes without a rate: disabled
  EXPECT_EQ(sweep::canonical_spec_bytes(poked), before);

  // Enabling it appends (only appends: the shared prefix is unchanged).
  poked.workload.arrivals_per_sec = 100.0;
  const std::string enabled = sweep::canonical_spec_bytes(poked);
  EXPECT_GT(enabled.size(), before.size());
  EXPECT_EQ(enabled.compare(0, before.size(), before), 0);
}

// ------------------------------------------------- spec-level validation --
// The CLI layer rejects most malformed inputs before the spec ever sees
// them (tests/cli_test.cc); these hit WorkloadSpec/WorkloadClass/SizeDist
// ::validate() directly, the contract programmatic users (benches, the
// stress grid) rely on.

WorkloadClass minimal_valid_class() {
  WorkloadClass c;
  c.size.kind = SizeDistKind::kFixed;
  c.size.fixed_segments = 4;
  c.size.min_segments = 4;
  c.size.max_segments = 4;
  return c;
}

TEST(WorkloadSpecValidate, SizeDistRejectsBadParameters) {
  SizeDist d;
  d.min_segments = 10;
  d.max_segments = 4;
  EXPECT_THROW(d.validate(), std::invalid_argument);  // max < min

  d = SizeDist{};
  d.pareto_alpha = -1.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);

  d = SizeDist{};
  d.kind = SizeDistKind::kLognormal;
  d.lognormal_sigma = 0.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);

  // Empirical: sizes must be >= 1 and non-decreasing.
  d = SizeDist{};
  d.kind = SizeDistKind::kEmpirical;
  d.empirical = {{0.5, 20}, {1.0, 10}};
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(WorkloadSpecValidate, ClassRejectsBadParameters) {
  WorkloadClass c = minimal_valid_class();
  EXPECT_NO_THROW(c.validate());

  c.weight = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = minimal_valid_class();
  c.rtt = TimeDelta::zero();
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = minimal_valid_class();
  c.app = AppModel::kWebObject;
  c.app_burst_segments = 0;  // non-bulk app models need a burst size
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = minimal_valid_class();
  c.app = AppModel::kWebObject;
  c.app_burst_segments = 4;
  c.app_gap = TimeDelta::millis(-1);
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = minimal_valid_class();
  c.app = AppModel::kVideoChunk;
  c.app_burst_segments = 4;
  c.app_gap = TimeDelta::zero();  // open-loop chunk cadence must be > 0
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(WorkloadSpecValidate, SpecRejectsBadTopLevel) {
  WorkloadSpec w;
  w.arrivals_per_sec = -5.0;
  EXPECT_THROW(w.validate(), std::invalid_argument);

  w = WorkloadSpec{};
  w.arrivals_per_sec = 100.0;  // a rate with nothing to send
  EXPECT_THROW(w.validate(), std::invalid_argument);
}

TEST(WorkloadSpecValidate, CdfFileSkipsBlankLinesAndRejectsGarbage) {
  const std::string dir = ::testing::TempDir();
  auto write_file = [&](const std::string& name, const std::string& body) {
    const std::string path = dir + "/" + name;
    std::ofstream out(path);
    out << body;
    return path;
  };
  // Whitespace-only lines (spaces, tabs) are skipped like empty ones.
  const std::vector<EmpiricalPoint> points = parse_empirical_cdf_file(
      write_file("wl-cdf-blank.txt", "   \n\t\n0.5 10\n\n1.0 40\n"));
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[1].segments, 40u);
  // A non-numeric probability column is a parse error, not a skip.
  EXPECT_THROW((void)parse_empirical_cdf_file(
                   write_file("wl-cdf-garbage.txt", "x 10\n1.0 40\n")),
               std::invalid_argument);
}

TEST(WorkloadSpecValidate, AnalyticMeanCoversEveryKind) {
  // Pareto at alpha == 1 takes the log-form branch of the closed form;
  // check it against a numeric Riemann sum of the truncated density.
  SizeDist d;
  d.pareto_alpha = 1.0;
  d.min_segments = 4;
  d.max_segments = 400;
  const double lo = 4.0;
  const double hi = 400.0;
  double numeric = 0.0;
  const int steps = 200000;
  for (int i = 0; i < steps; ++i) {
    const double x = lo + (hi - lo) * (static_cast<double>(i) + 0.5) /
                              static_cast<double>(steps);
    // Truncated Pareto(alpha=1) density: (lo / x^2) / (1 - lo/hi).
    numeric += (lo / (x * x)) / (1.0 - lo / hi) * x * (hi - lo) /
               static_cast<double>(steps);
  }
  EXPECT_NEAR(d.analytic_mean_segments(), numeric,
              0.01 * numeric);

  d = SizeDist{};
  d.kind = SizeDistKind::kFixed;
  d.fixed_segments = 37;
  EXPECT_DOUBLE_EQ(d.analytic_mean_segments(), 37.0);
}

}  // namespace
}  // namespace ccas
