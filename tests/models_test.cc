// Tests for the analytical models: Mathis, Padhye (PFTK), Ware et al. BBR,
// and Chiu-Jain AIMD convergence.
#include <gtest/gtest.h>

#include <cmath>

#include "src/models/chiu_jain.h"
#include "src/models/mathis.h"
#include "src/models/padhye.h"
#include "src/models/ware_bbr.h"

namespace ccas {
namespace {

// ------------------------------------------------------------- Mathis ----

TEST(Mathis, MatchesClosedForm) {
  const MathisModel model(1.22, 1448);
  // Throughput = MSS*C/(RTT*sqrt(p)); p = 0.01, RTT = 100 ms.
  const DataRate t = model.predict(TimeDelta::millis(100), 0.01);
  const double expect_bps = 1448.0 * 1.22 / (0.1 * 0.1) * 8.0;
  EXPECT_NEAR(static_cast<double>(t.bits_per_sec()), expect_bps, expect_bps * 1e-6);
}

TEST(Mathis, ThroughputScalesInverseSqrtP) {
  const MathisModel model(0.94, 1448);
  const DataRate t1 = model.predict(TimeDelta::millis(20), 0.0001);
  const DataRate t4 = model.predict(TimeDelta::millis(20), 0.0004);
  EXPECT_NEAR(t1 / t4, 2.0, 1e-6);  // 4x loss -> half throughput
}

TEST(Mathis, ThroughputScalesInverseRtt) {
  const MathisModel model(0.94, 1448);
  const DataRate t20 = model.predict(TimeDelta::millis(20), 0.001);
  const DataRate t200 = model.predict(TimeDelta::millis(200), 0.001);
  EXPECT_NEAR(t20 / t200, 10.0, 1e-4);  // int64 bps truncation
}

TEST(Mathis, InverseRoundTrips) {
  const MathisModel model(1.0, 1448);
  const TimeDelta rtt = TimeDelta::millis(50);
  const DataRate t = model.predict(rtt, 0.002);
  EXPECT_NEAR(model.required_event_rate(rtt, t), 0.002, 1e-9);
}

TEST(Mathis, ImpliedConstantRoundTrips) {
  const MathisModel model(1.37, 1448);
  const TimeDelta rtt = TimeDelta::millis(20);
  const DataRate t = model.predict(rtt, 0.0005);
  EXPECT_NEAR(MathisModel::implied_constant(t, rtt, 0.0005, 1448), 1.37, 1e-6);
}

TEST(Mathis, ZeroLossIsInfinite) {
  const MathisModel model(0.94, 1448);
  EXPECT_TRUE(model.predict(TimeDelta::millis(20), 0.0).is_infinite());
}

TEST(Mathis, InvalidInputsThrow) {
  const MathisModel model(0.94, 1448);
  EXPECT_THROW(model.predict(TimeDelta::zero(), 0.01), std::invalid_argument);
  EXPECT_THROW(MathisModel::implied_constant(DataRate::mbps(1), TimeDelta::millis(20),
                                             0.0, 1448),
               std::invalid_argument);
}

// ------------------------------------------------------------- Padhye ----

TEST(Padhye, ReducesTowardMathisAtSmallP) {
  // For small p the RTO term vanishes and PFTK ~ MSS/(RTT*sqrt(2bp/3)),
  // i.e. the Mathis form with C = sqrt(3/(2b)).
  PadhyeParams params;
  params.acked_per_ack = 1.0;
  const PadhyeModel padhye(params);
  const MathisModel mathis(std::sqrt(3.0 / 2.0), params.mss_bytes);
  const TimeDelta rtt = TimeDelta::millis(100);
  const double p = 1e-6;
  const double ratio = padhye.predict(rtt, p) / mathis.predict(rtt, p);
  EXPECT_NEAR(ratio, 1.0, 0.01);
}

TEST(Padhye, RtoTermDominatesAtHighLoss) {
  const PadhyeModel padhye;
  const MathisModel mathis(std::sqrt(3.0 / 4.0), 1448);
  const TimeDelta rtt = TimeDelta::millis(100);
  // At p = 0.2 the timeout term slashes throughput well below Mathis.
  EXPECT_LT(padhye.predict(rtt, 0.2) / mathis.predict(rtt, 0.2), 0.5);
}

TEST(Padhye, WindowLimitCaps) {
  PadhyeParams params;
  params.max_window_segments = 10.0;
  const PadhyeModel padhye(params);
  const TimeDelta rtt = TimeDelta::millis(100);
  const DataRate capped = padhye.predict(rtt, 1e-9);
  const double limit_bps = 10.0 / 0.1 * 1448.0 * 8.0;
  EXPECT_NEAR(static_cast<double>(capped.bits_per_sec()), limit_bps, limit_bps * 1e-6);
}

TEST(Padhye, MonotoneDecreasingInP) {
  const PadhyeModel padhye;
  const TimeDelta rtt = TimeDelta::millis(50);
  double prev = 1e30;
  for (double p = 1e-5; p < 0.3; p *= 3) {
    const double t = static_cast<double>(padhye.predict(rtt, p).bits_per_sec());
    EXPECT_LT(t, prev);
    prev = t;
  }
}

// ------------------------------------------------------------ WareBbr ----

WareBbrParams core_params(int n_bbr, int n_loss) {
  WareBbrParams p;
  p.link = DataRate::gbps(10);
  p.rtprop = TimeDelta::millis(20);
  p.buffer_bytes = 375LL * 1000 * 1000;
  p.num_bbr = n_bbr;
  p.num_loss_based = n_loss;
  return p;
}

TEST(WareBbr, InflightCapFormula) {
  const WareBbrModel model(core_params(1, 1000));
  // cap = 2 * bw * rtprop / MSS.
  const double cap = model.inflight_cap_segments(DataRate::gbps(4),
                                                 TimeDelta::millis(20));
  EXPECT_NEAR(cap, 2.0 * 4e9 / 8.0 * 0.02 / 1448.0, 1.0);
}

TEST(WareBbr, QueueInflatedRtt) {
  const WareBbrModel model(core_params(1, 1000));
  const TimeDelta rtt = model.queue_inflated_rtt(375LL * 1000 * 1000);
  EXPECT_NEAR(rtt.ms(), 20.0 + 300.0, 0.5);
}

TEST(WareBbr, SingleBbrShareInsensitiveToCompetitorCount) {
  // Ware et al.'s headline: one BBR flow's share barely moves as the
  // number of loss-based competitors grows by 5x.
  const double f1000 = WareBbrModel(core_params(1, 1000)).predict().bbr_fraction;
  const double f5000 = WareBbrModel(core_params(1, 5000)).predict().bbr_fraction;
  EXPECT_GT(f1000, 0.1);
  EXPECT_LT(f1000, 0.9);
  EXPECT_NEAR(f1000, f5000, 0.25);
}

TEST(WareBbr, ManyBbrFlowsDominate) {
  // Equal counts: BBR takes nearly everything (paper Finding 7).
  const double f = WareBbrModel(core_params(1000, 1000)).predict().bbr_fraction;
  EXPECT_GT(f, 0.8);
}

TEST(WareBbr, PredictionIsAFraction) {
  for (int n : {1, 10, 100, 1000}) {
    const auto pred = WareBbrModel(core_params(n, 1000)).predict();
    EXPECT_GE(pred.bbr_fraction, 0.0);
    EXPECT_LE(pred.bbr_fraction, 1.0);
    EXPECT_TRUE(pred.window_limited);
    EXPECT_GT(pred.inflight_cap_segments, 0.0);
  }
}

TEST(WareBbr, RejectsBadParams) {
  WareBbrParams p = core_params(0, 10);
  EXPECT_THROW(WareBbrModel{p}, std::invalid_argument);
}

// ----------------------------------------------------------- ChiuJain ----

TEST(ChiuJain, ConvergesToFairnessAndEfficiency) {
  AimdParams params;
  params.capacity = 100.0;
  ChiuJainAimd sys(params, {5.0, 80.0});
  EXPECT_LT(sys.jain_index(), 0.7);
  sys.run(2000);
  EXPECT_GT(sys.jain_index(), 0.99);
  EXPECT_GT(sys.utilization(), 0.5);
  EXPECT_LE(sys.utilization(), 1.1);
}

// Chiu & Jain's central positive result: any multiplicative decrease in
// (0, 1) combined with additive increase converges to fairness from an
// arbitrarily unfair start.
class ChiuJainDecreaseSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChiuJainDecreaseSweep, ConvergesForAnyDecreaseFactor) {
  AimdParams params;
  params.capacity = 200.0;
  params.multiplicative_decrease = GetParam();
  ChiuJainAimd sys(params, {1.0, 199.0});
  const int rounds = sys.rounds_to_fairness(0.99, 200000);
  ASSERT_GE(rounds, 0) << "did not converge with MD " << GetParam();
  // Efficiency: the operating point stays near capacity.
  sys.run(1000);
  EXPECT_GT(sys.utilization(), GetParam() * 0.9);
  EXPECT_LT(sys.utilization(), 1.2);
}

INSTANTIATE_TEST_SUITE_P(Factors, ChiuJainDecreaseSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

TEST(ChiuJain, NFlowsConvergeToEqualShares) {
  AimdParams params;
  params.capacity = 1000.0;
  std::vector<double> rates;
  for (int i = 0; i < 10; ++i) rates.push_back(static_cast<double>(i * i));
  ChiuJainAimd sys(params, rates);
  sys.run(20000);
  EXPECT_GT(sys.jain_index(), 0.995);
  for (const double r : sys.rates()) {
    EXPECT_NEAR(r, sys.rates()[0], sys.rates()[0] * 0.2);
  }
}

TEST(ChiuJain, Validation) {
  EXPECT_THROW(ChiuJainAimd(AimdParams{}, {}), std::invalid_argument);
  AimdParams bad;
  bad.multiplicative_decrease = 1.5;
  EXPECT_THROW(ChiuJainAimd(bad, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace ccas
