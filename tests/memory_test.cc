// Tests for the memory architecture (DESIGN.md §12): the monotonic arena,
// the NodePool size-class recycler, the global allocation counter, the
// lazy-timer pending-entry tracking the churn reaper relies on, and the
// arena-backed FlowTable with slab recycling.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/harness/flow_table.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/sim/timer.h"
#include "src/util/alloc_counter.h"
#include "src/util/arena.h"
#include "src/util/node_pool.h"

namespace ccas {
namespace {

// ------------------------------------------------------------ arena ----

TEST(Arena, HonorsAlignment) {
  MonotonicArena arena;
  // Interleave odd sizes with every power-of-two alignment the simulator
  // uses; each returned pointer must satisfy its own request.
  for (int round = 0; round < 64; ++round) {
    for (size_t align : {size_t{1}, size_t{8}, size_t{16}, size_t{64},
                         size_t{128}}) {
      void* p = arena.allocate(1 + static_cast<size_t>(round) * 7, align);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "align " << align << " round " << round;
    }
  }
}

TEST(Arena, AllocationsDoNotOverlap) {
  MonotonicArena arena(1 << 12);  // small blocks force frequent growth
  std::vector<std::pair<unsigned char*, size_t>> out;
  size_t next = 1;
  for (int i = 0; i < 200; ++i) {
    const size_t bytes = next;
    next = next * 3 % 1000 + 1;
    auto* p = static_cast<unsigned char*>(arena.allocate(bytes, 8));
    std::memset(p, i & 0xff, bytes);
    out.emplace_back(p, bytes);
  }
  // Every region still holds its fill pattern: no overlap, no relocation.
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t b = 0; b < out[i].second; ++b) {
      ASSERT_EQ(out[i].first[b], static_cast<unsigned char>(i & 0xff));
    }
  }
}

TEST(Arena, GeometricGrowthConcentratesBlocks) {
  MonotonicArena arena(1 << 16);
  // 16 MB in 1 KB pieces: doubling block sizes must need far fewer blocks
  // than the 256 a fixed 64 KB block size would.
  for (int i = 0; i < 16 * 1024; ++i) (void)arena.allocate(1024, 8);
  EXPECT_GE(arena.bytes_used(), size_t{16} << 20);
  EXPECT_LE(arena.blocks(), 12u);
}

TEST(Arena, HugeBlockPathIsWritable) {
  // A block at or above 2 MB takes the huge-page-aligned path; the memory
  // must be usable end to end regardless of whether the aligned
  // allocation (or the madvise) succeeded.
  MonotonicArena arena(size_t{4} << 20);
  auto* p = static_cast<unsigned char*>(arena.allocate(size_t{3} << 20, 64));
  p[0] = 0xab;
  p[(size_t{3} << 20) - 1] = 0xcd;
  EXPECT_EQ(p[0], 0xab);
  EXPECT_EQ(p[(size_t{3} << 20) - 1], 0xcd);
}

TEST(Arena, RunsDestructorsInReverseOrder) {
  std::vector<int> order;
  struct Tracer {
    std::vector<int>* order;
    int id;
    ~Tracer() { order->push_back(id); }
  };
  {
    MonotonicArena arena;
    for (int i = 0; i < 4; ++i) arena.make<Tracer>(&order, i);
  }
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

// --------------------------------------------------------- node pool ----

TEST(NodePool, RecyclesWithinSizeClass) {
  NodePool pool;
  void* a = pool.allocate(40);  // class 64
  pool.deallocate(a, 40);
  void* b = pool.allocate(60);  // same class: must reuse the freed block
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.reused_blocks(), 1u);
  EXPECT_EQ(pool.fresh_blocks(), 1u);
}

TEST(NodePool, ClassesAreIndependent) {
  NodePool pool;
  void* small = pool.allocate(16);
  pool.deallocate(small, 16);
  void* big = pool.allocate(200);  // different class: fresh block
  EXPECT_NE(small, big);
  EXPECT_EQ(pool.reused_blocks(), 0u);
}

TEST(NodePool, SizeClassRounding) {
  EXPECT_EQ(NodePool::class_index(1), 0u);
  EXPECT_EQ(NodePool::class_index(16), 0u);
  EXPECT_EQ(NodePool::class_index(17), 1u);
  EXPECT_EQ(NodePool::class_index(64), 2u);
  EXPECT_EQ(NodePool::class_bytes(0), 16u);
  EXPECT_EQ(NodePool::class_bytes(3), 128u);
}

TEST(NodePool, SteadyStateChurnTouchesHeapOnce) {
  NodePool pool;
  // Reach the high-water set, then churn: the heap-allocation counter must
  // not move once every class has its free block.
  void* warm = pool.allocate(48);
  pool.deallocate(warm, 48);
  const uint64_t before = thread_heap_allocs();
  for (int i = 0; i < 10'000; ++i) {
    void* p = pool.allocate(48);
    pool.deallocate(p, 48);
  }
  EXPECT_EQ(thread_heap_allocs(), before);
}

// ------------------------------------------------------ alloc counter ----

TEST(AllocCounter, CountsOperatorNew) {
  const uint64_t before = thread_heap_allocs();
  void* p = ::operator new(32);
  ::operator delete(p);
  EXPECT_GE(thread_heap_allocs(), before + 1);
}

// ---------------------------------------------- timer pending entries ----

TEST(TimerPending, CancelledEntryStaysPendingUntilItDrains) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_at(Time::nanos(100));
  EXPECT_TRUE(t.has_pending_entry());
  EXPECT_EQ(t.pending_entry_at(), Time::nanos(100));

  // Cancel is lazy: the queue entry survives the cancel, so the owner (a
  // churn flow slab) must stay alive until it drains.
  t.cancel();
  EXPECT_TRUE(t.has_pending_entry());

  sim.run_until(Time::nanos(200));
  EXPECT_FALSE(t.has_pending_entry());
  EXPECT_EQ(t.pending_entry_at(), Time::zero());
  EXPECT_EQ(fired, 0);
}

TEST(TimerPending, RearmEarlierTracksTheLatestEntry) {
  Simulator sim;
  Timer t(sim, [] {});
  t.arm_at(Time::nanos(1000));
  t.arm_at(Time::nanos(10));  // earlier: pushes a second entry
  EXPECT_TRUE(t.has_pending_entry());
  // Both entries are pending; the reaper must wait for the *last* one.
  EXPECT_EQ(t.pending_entry_at(), Time::nanos(1000));
  sim.run_until(Time::nanos(500));
  EXPECT_TRUE(t.has_pending_entry());  // the stale 1000ns entry remains
  sim.run_until(Time::nanos(2000));
  EXPECT_FALSE(t.has_pending_entry());
}

// --------------------------------------------------------- flow table ----

class NullSink final : public PacketSink {
 public:
  void accept(Packet&& /*pkt*/) override {}
};

TEST(FlowTable, SlabsAreCacheLineAlignedAndDisjoint) {
  Simulator sim;
  NullSink sink;
  FlowTable table;
  std::vector<FlowTable::Slot> slots;
  for (uint32_t id = 0; id < 8; ++id) {
    slots.push_back(table.create(sim, id, Rng(id + 1), "newreno", &sink,
                                 &sink, TcpSenderConfig{},
                                 TcpReceiverConfig{}));
  }
  for (const FlowTable::Slot& s : slots) {
    // The Rng heads the slab; slabs are 64-byte aligned.
    EXPECT_EQ(reinterpret_cast<uintptr_t>(s.rng) % FlowTable::kSlabAlign, 0u);
    // Objects of one flow are one contiguous neighbourhood, in
    // construction order.
    EXPECT_LT(reinterpret_cast<uintptr_t>(s.rng),
              reinterpret_cast<uintptr_t>(s.receiver));
    EXPECT_LT(reinterpret_cast<uintptr_t>(s.receiver),
              reinterpret_cast<uintptr_t>(s.sender));
  }
  EXPECT_EQ(table.live(), 8u);
  EXPECT_EQ(table.slabs_allocated(), 8u);
}

TEST(FlowTable, RecycleParksAndReusesTheSlab) {
  Simulator sim;
  NullSink sink;
  FlowTable table;
  FlowTable::Slot a = table.create(sim, 0, Rng(1), "cubic", &sink, &sink,
                                   TcpSenderConfig{}, TcpReceiverConfig{});
  void* slab = a.rng;
  table.recycle(a);
  EXPECT_EQ(table.live(), 0u);
  EXPECT_EQ(table.slabs_recycled(), 1u);

  FlowTable::Slot b = table.create(sim, 1, Rng(2), "cubic", &sink, &sink,
                                   TcpSenderConfig{}, TcpReceiverConfig{});
  EXPECT_EQ(static_cast<void*>(b.rng), slab);  // same memory, no new slab
  EXPECT_EQ(table.slab_reuses(), 1u);
  EXPECT_EQ(table.slabs_allocated(), 1u);
}

TEST(FlowTable, ChurnReusesWithoutGrowingTheArena) {
  Simulator sim;
  NullSink sink;
  FlowTable table;
  // Warm up one slab, then churn create/recycle: arena usage must not grow
  // and (steady state) the heap must not be touched.
  FlowTable::Slot warm = table.create(sim, 0, Rng(1), "newreno", &sink,
                                      &sink, TcpSenderConfig{},
                                      TcpReceiverConfig{});
  table.recycle(warm);
  const size_t arena_high_water = table.arena_bytes();
  const uint64_t heap_before = thread_heap_allocs();
  for (uint32_t i = 1; i <= 500; ++i) {
    FlowTable::Slot s = table.create(sim, i, Rng(i), "newreno", &sink, &sink,
                                     TcpSenderConfig{}, TcpReceiverConfig{});
    table.recycle(s);
  }
  EXPECT_EQ(table.arena_bytes(), arena_high_water);
  EXPECT_EQ(table.slab_reuses(), 500u);
  EXPECT_EQ(thread_heap_allocs(), heap_before);
}

TEST(FlowTable, BuildsEveryRegisteredCca) {
  Simulator sim;
  NullSink sink;
  FlowTable table;
  uint32_t id = 0;
  for (const std::string cca :
       {"newreno", "cubic", "bbr", "bbr2", "vegas", "copa"}) {
    FlowTable::Slot s = table.create(sim, id, Rng(id + 1), cca, &sink, &sink,
                                     TcpSenderConfig{}, TcpReceiverConfig{});
    ASSERT_NE(s.sender, nullptr) << cca;
    ASSERT_NE(s.receiver, nullptr) << cca;
    table.recycle(s);
    ++id;
  }
}

TEST(FlowTable, SendersAreFunctionalFromSlabs) {
  // A slab-resident sender/receiver pair must complete a transfer exactly
  // like the heap-allocated originals (wired back to back through delay
  // lines in churn_test.cc style; here a loopback suffices: sender's data
  // goes straight to the receiver, ACKs straight back).
  Simulator sim;
  FlowTable table;

  class Wire final : public PacketSink {
   public:
    void accept(Packet&& pkt) override { target->accept(std::move(pkt)); }
    PacketSink* target = nullptr;
  };
  Wire to_receiver;
  Wire to_sender;
  TcpSenderConfig cfg;
  cfg.data_segments = 25;
  FlowTable::Slot s = table.create(sim, 0, Rng(3), "newreno", &to_receiver,
                                   &to_sender, cfg, TcpReceiverConfig{});
  to_receiver.target = s.receiver;
  to_sender.target = s.sender;
  s.sender->start();
  sim.run();
  EXPECT_TRUE(s.sender->complete());
  EXPECT_EQ(s.receiver->rcv_nxt(), 25u);
}

}  // namespace
}  // namespace ccas
