// Property test: SackScoreboard (deque + counters + monotone loss-scan
// cursor) against a naive reference model (plain std::set bookkeeping,
// everything recomputed the obvious way). Randomized, seeded ACK/SACK/RTO
// sequences must produce identical sacked/lost/retransmit decisions —
// any divergence is a real bug in one of the two, and the naive model is
// simple enough to be right by inspection.
#include "src/tcp/sack_scoreboard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <set>
#include <vector>

namespace ccas {
namespace {

// The reference model: the RFC 6675 rules written with no cleverness.
class ReferenceScoreboard {
 public:
  [[nodiscard]] uint64_t snd_una() const { return una_; }
  [[nodiscard]] uint64_t snd_nxt() const { return nxt_; }
  [[nodiscard]] uint64_t sacked_count() const { return sacked_.size(); }
  [[nodiscard]] uint64_t lost_count() const { return lost_.size(); }
  [[nodiscard]] uint64_t highest_sacked_end() const { return highest_sacked_end_; }
  [[nodiscard]] bool is_sacked(uint64_t seq) const { return sacked_.count(seq) > 0; }
  [[nodiscard]] bool is_lost(uint64_t seq) const { return lost_.count(seq) > 0; }
  [[nodiscard]] bool is_outstanding(uint64_t seq) const {
    return outstanding_.count(seq) > 0;
  }

  void extend() { ++nxt_; }

  uint64_t advance_una(uint64_t new_una) {
    uint64_t newly = 0;
    for (uint64_t s = una_; s < new_una; ++s) {
      if (sacked_.count(s) == 0) ++newly;
      sacked_.erase(s);
      lost_.erase(s);
      outstanding_.erase(s);
    }
    una_ = new_una;
    scan_ = std::max(scan_, una_);
    highest_sacked_end_ = std::max(highest_sacked_end_, una_);
    return newly;
  }

  uint64_t apply_sack(uint64_t start, uint64_t end) {
    start = std::max(start, una_);
    end = std::min(end, nxt_);
    uint64_t newly = 0;
    for (uint64_t s = start; s < end; ++s) {
      if (sacked_.insert(s).second) {
        ++newly;
        lost_.erase(s);  // presumed-lost segment actually arrived
        outstanding_.erase(s);
      }
    }
    if (end > highest_sacked_end_ && newly > 0) highest_sacked_end_ = end;
    return newly;
  }

  uint64_t mark_lost_by_sack(uint64_t dup_thresh) {
    if (highest_sacked_end_ <= una_) return 0;
    const uint64_t highest_sacked_seq = highest_sacked_end_ - 1;
    if (highest_sacked_seq < dup_thresh) return 0;
    const uint64_t limit = highest_sacked_seq - dup_thresh + 1;
    uint64_t count = 0;
    for (; scan_ < limit; ++scan_) {
      if (sacked_.count(scan_) == 0 && lost_.insert(scan_).second) {
        ++count;
        outstanding_.erase(scan_);
      }
    }
    return count;
  }

  uint64_t mark_lost(uint64_t seq) {
    if (sacked_.count(seq) > 0 || lost_.count(seq) > 0) return 0;
    lost_.insert(seq);
    outstanding_.erase(seq);
    return 1;
  }

  uint64_t mark_all_lost() {
    uint64_t count = 0;
    for (uint64_t s = una_; s < nxt_; ++s) {
      if (sacked_.count(s) == 0 && lost_.insert(s).second) ++count;
    }
    outstanding_.clear();
    scan_ = una_;  // post-RTO rescan from scratch
    return count;
  }

  void note_transmit(uint64_t seq) {
    lost_.erase(seq);
    outstanding_.insert(seq);
  }

  [[nodiscard]] std::optional<uint64_t> find_lost_from(uint64_t from) const {
    for (uint64_t s = std::max(from, una_); s < nxt_; ++s) {
      if (lost_.count(s) > 0) return s;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<uint64_t> first_outstanding() const {
    for (uint64_t s = una_; s < nxt_; ++s) {
      if (outstanding_.count(s) > 0) return s;
    }
    return std::nullopt;
  }

  std::optional<uint64_t> clear_first_outstanding_from(uint64_t from) {
    for (uint64_t s = std::max(from, una_); s < nxt_; ++s) {
      if (outstanding_.erase(s) > 0) return s;
    }
    return std::nullopt;
  }

 private:
  uint64_t una_ = 0;
  uint64_t nxt_ = 0;
  std::set<uint64_t> sacked_;
  std::set<uint64_t> lost_;
  std::set<uint64_t> outstanding_;
  uint64_t highest_sacked_end_ = 0;
  uint64_t scan_ = 0;
};

void expect_identical(const SackScoreboard& sb, const ReferenceScoreboard& ref,
                      uint64_t step) {
  ASSERT_EQ(sb.snd_una(), ref.snd_una()) << "step " << step;
  ASSERT_EQ(sb.snd_nxt(), ref.snd_nxt()) << "step " << step;
  ASSERT_EQ(sb.sacked_count(), ref.sacked_count()) << "step " << step;
  ASSERT_EQ(sb.lost_count(), ref.lost_count()) << "step " << step;
  ASSERT_EQ(sb.highest_sacked_end(), ref.highest_sacked_end()) << "step " << step;
  for (uint64_t s = sb.snd_una(); s < sb.snd_nxt(); ++s) {
    ASSERT_EQ(sb.seg(s).sacked, ref.is_sacked(s)) << "seq " << s << " step " << step;
    ASSERT_EQ(sb.seg(s).lost, ref.is_lost(s)) << "seq " << s << " step " << step;
    ASSERT_EQ(sb.seg(s).outstanding, ref.is_outstanding(s))
        << "seq " << s << " step " << step;
  }
}

void run_random_trace(uint64_t seed) {
  std::mt19937_64 rng(seed);
  SackScoreboard sb;
  ReferenceScoreboard ref;
  const uint64_t dup_thresh = 3;
  auto rand_in = [&](uint64_t lo, uint64_t hi) {  // inclusive range
    return lo + rng() % (hi - lo + 1);
  };

  for (uint64_t step = 0; step < 2000; ++step) {
    const uint64_t op = rng() % 100;
    if (op < 35 || sb.empty()) {
      // Send a burst of new segments.
      const uint64_t burst = rand_in(1, 8);
      for (uint64_t i = 0; i < burst; ++i) {
        sb.extend();
        ref.extend();
        sb.note_transmit(sb.snd_nxt() - 1);
        ref.note_transmit(ref.snd_nxt() - 1);
      }
    } else if (op < 80) {
      // An ACK: cumulative point plus up to 3 SACK blocks, then the loss
      // inference pass — exactly the sender's per-ACK sequence.
      const uint64_t new_una = rand_in(sb.snd_una(), sb.snd_nxt());
      uint64_t d1 = sb.advance_una(new_una, [](uint64_t, SegmentState&) {});
      uint64_t d2 = ref.advance_una(new_una);
      ASSERT_EQ(d1, d2) << "advance_una(" << new_una << ") step " << step;
      const uint64_t blocks = rng() % 4;
      for (uint64_t b = 0; b < blocks && !sb.empty(); ++b) {
        // Deliberately unclamped: blocks may straddle una/nxt or be empty.
        const uint64_t start = rand_in(sb.snd_una(), sb.snd_nxt() + 2);
        const uint64_t end = start + rng() % 6;
        d1 = sb.apply_sack(start, end, [](uint64_t, SegmentState&) {});
        d2 = ref.apply_sack(start, end);
        ASSERT_EQ(d1, d2) << "apply_sack(" << start << "," << end << ") step "
                          << step;
      }
      d1 = sb.mark_lost_by_sack(dup_thresh, [](uint64_t, SegmentState&) {});
      d2 = ref.mark_lost_by_sack(dup_thresh);
      ASSERT_EQ(d1, d2) << "mark_lost_by_sack step " << step;
    } else if (op < 90) {
      // Retransmit what the scoreboard says is lost; both models must pick
      // the same segments in the same order.
      uint64_t hint = sb.snd_una();
      for (int i = 0; i < 4; ++i) {
        const auto lost = sb.find_lost_from(hint);
        const auto ref_lost = ref.find_lost_from(hint);
        ASSERT_EQ(lost.has_value(), ref_lost.has_value()) << "step " << step;
        if (!lost) break;
        ASSERT_EQ(*lost, *ref_lost) << "step " << step;
        sb.note_transmit(*lost);
        ref.note_transmit(*lost);
        hint = *lost + 1;
      }
    } else if (op < 95) {
      // The RFC 5681 no-SACK path: dupack pipe deflation retires a
      // specific outstanding segment beyond the hole, and fast retransmit
      // marks the hole itself lost.
      const auto fo = sb.first_outstanding();
      const auto ref_fo = ref.first_outstanding();
      ASSERT_EQ(fo, ref_fo) << "first_outstanding step " << step;
      const uint64_t from = rand_in(sb.snd_una(), sb.snd_nxt());
      const auto c1 = sb.clear_first_outstanding_from(from);
      const auto c2 = ref.clear_first_outstanding_from(from);
      ASSERT_EQ(c1, c2) << "clear_first_outstanding_from(" << from << ") step "
                        << step;
      if (!sb.empty()) {
        ASSERT_EQ(sb.mark_lost(sb.snd_una(), [](uint64_t, SegmentState&) {}),
                  ref.mark_lost(ref.snd_una()))
            << "mark_lost step " << step;
      }
    } else {
      // RTO: everything outstanding is presumed lost, scan restarts.
      const uint64_t d1 = sb.mark_all_lost([](uint64_t, SegmentState&) {});
      const uint64_t d2 = ref.mark_all_lost();
      ASSERT_EQ(d1, d2) << "mark_all_lost step " << step;
    }
    expect_identical(sb, ref, step);
  }
}

TEST(ScoreboardProperty, MatchesReferenceModelAcrossSeeds) {
  for (const uint64_t seed : {1ULL, 2ULL, 3ULL, 0xdeadbeefULL, 0xc0ffeeULL}) {
    SCOPED_TRACE(seed);
    run_random_trace(seed);
  }
}

TEST(ScoreboardProperty, LostRetransmitRescueInterleaving) {
  // Directed mini-trace for the rescue rule: a segment marked lost, then
  // retransmitted, then SACKed must end neither lost nor double-counted.
  SackScoreboard sb;
  ReferenceScoreboard ref;
  for (int i = 0; i < 10; ++i) {
    sb.extend();
    ref.extend();
  }
  // SACK 5..10: segments 0..6 are candidates; with dup_thresh 3 segments
  // 0..6 (below seq 9-3+1=7) become lost.
  (void)sb.apply_sack(5, 10, [](uint64_t, SegmentState&) {});
  (void)ref.apply_sack(5, 10);
  EXPECT_EQ(sb.mark_lost_by_sack(3, [](uint64_t, SegmentState&) {}),
            ref.mark_lost_by_sack(3));
  EXPECT_EQ(sb.lost_count(), 5u);  // 0..4 (5..9 sacked)
  // Retransmit 0 and 1, then a SACK for 1 arrives (the retransmitted copy
  // got through); the monotone cursor must not re-mark either.
  sb.note_transmit(0);
  ref.note_transmit(0);
  sb.note_transmit(1);
  ref.note_transmit(1);
  (void)sb.apply_sack(1, 2, [](uint64_t, SegmentState&) {});
  (void)ref.apply_sack(1, 2);
  EXPECT_EQ(sb.mark_lost_by_sack(3, [](uint64_t, SegmentState&) {}),
            ref.mark_lost_by_sack(3));
  expect_identical(sb, ref, 0);
  EXPECT_FALSE(sb.seg(0).lost);
  EXPECT_TRUE(sb.seg(1).sacked);
  // Cumulative ACK past everything clears the board identically.
  EXPECT_EQ(sb.advance_una(10, [](uint64_t, SegmentState&) {}),
            ref.advance_una(10));
  expect_identical(sb, ref, 1);
  EXPECT_TRUE(sb.empty());
}

}  // namespace
}  // namespace ccas
