// Coverage for the smaller public API surfaces: packet SACK encoding,
// event-queue maintenance, simulator conveniences, unit formatting,
// logging configuration, and registry introspection.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/cca/cca.h"
#include "src/net/packet.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace ccas {
namespace {

TEST(Packet, SackEncodingRoundTrips) {
  Packet ack = Packet::make_ack(3, 1, 1000);
  EXPECT_TRUE(ack.add_sack(1005, 1010));
  EXPECT_TRUE(ack.add_sack(1020, 1021));
  EXPECT_EQ(ack.num_sacks, 2);
  EXPECT_EQ(ack.sack(0).start, 1005u);
  EXPECT_EQ(ack.sack(0).end, 1010u);
  EXPECT_EQ(ack.sack(1).start, 1020u);
  EXPECT_FALSE(ack.sack(0).empty());
}

TEST(Packet, SackDeduplicatesAndCaps) {
  Packet ack = Packet::make_ack(0, 1, 50);
  EXPECT_TRUE(ack.add_sack(60, 70));
  EXPECT_FALSE(ack.add_sack(60, 70));  // duplicate
  EXPECT_TRUE(ack.add_sack(80, 90));
  EXPECT_TRUE(ack.add_sack(100, 110));
  EXPECT_FALSE(ack.add_sack(120, 130));  // full
  EXPECT_EQ(ack.num_sacks, 3);
}

TEST(Packet, FactoryFieldsAndSize) {
  const Packet d = Packet::make_data(7, 0, 42, true);
  EXPECT_EQ(d.type, PacketType::kData);
  EXPECT_TRUE(d.retransmit);
  EXPECT_EQ(d.size_bytes, static_cast<uint32_t>(kDataPacketBytes));
  const Packet a = Packet::make_ack(7, 1, 42);
  EXPECT_EQ(a.type, PacketType::kAck);
  EXPECT_EQ(a.size_bytes, static_cast<uint32_t>(kAckPacketBytes));
  EXPECT_LE(sizeof(Packet), 64u);
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  class Nop : public EventHandler {
   public:
    void on_event(uint32_t, uint64_t) override {}
  } h;
  q.push(Time::nanos(5), &h, 0, 0);
  q.push(Time::nanos(6), &h, 0, 0);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(Simulator, RunForAdvancesRelativeToNow) {
  Simulator sim;
  int fired = 0;
  sim.schedule_fn_in(TimeDelta::millis(3), [&] { ++fired; });
  sim.run_for(TimeDelta::millis(2));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), Time::zero() + TimeDelta::millis(2));
  sim.run_for(TimeDelta::millis(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::zero() + TimeDelta::millis(4));
}

TEST(Units, RateToString) {
  EXPECT_EQ(DataRate::gbps(10).to_string(), "10.000Gbps");
  EXPECT_EQ(DataRate::mbps(100).to_string(), "100.000Mbps");
  EXPECT_EQ(DataRate::kbps(5).to_string(), "5.000kbps");
  EXPECT_EQ(DataRate::bps(42).to_string(), "42bps");
  EXPECT_EQ(DataRate::infinite().to_string(), "+inf");
}

TEST(Units, TimeToString) {
  EXPECT_EQ(Time::seconds_f(1.5).to_string(), "t=1.500000s");
  EXPECT_EQ(Time::infinite().to_string(), "+inf");
}

TEST(Logging, EnvInitAndLevels) {
  const LogLevel before = log_level();
  ::setenv("CCAS_LOG", "debug", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  ::setenv("CCAS_LOG", "off", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kOff);
  ::unsetenv("CCAS_LOG");
  set_log_level(before);
}

TEST(CcaRegistry, ListsBuiltins) {
  const auto names = CcaRegistry::instance().names();
  for (const char* expected : {"newreno", "cubic", "bbr", "bbr2", "vegas"}) {
    EXPECT_TRUE(CcaRegistry::instance().contains(expected)) << expected;
    bool found = false;
    for (const auto& n : names) found |= (n == expected);
    EXPECT_TRUE(found) << expected;
  }
  Rng rng(1);
  EXPECT_THROW(make_cca("definitely-not-a-cca", rng), std::invalid_argument);
}

TEST(CcaRegistry, CustomRegistrationIsUsable) {
  class Fixed : public CongestionController {
   public:
    void on_ack(const AckEvent&) override {}
    void on_congestion_event(Time, uint64_t) override {}
    void on_recovery_exit(Time, uint64_t) override {}
    void on_rto(Time) override {}
    [[nodiscard]] uint64_t cwnd() const override { return 17; }
    [[nodiscard]] std::string name() const override { return "fixed17"; }
  };
  CcaRegistry::instance().register_cca(
      "fixed17", [](Rng&) { return std::make_unique<Fixed>(); });
  Rng rng(1);
  auto cca = make_cca("fixed17", rng);
  EXPECT_EQ(cca->cwnd(), 17u);
  EXPECT_TRUE(cca->pacing_rate().is_infinite());   // default: unpaced
  EXPECT_FALSE(cca->owns_recovery_cwnd());         // default: PRR applies
  EXPECT_EQ(cca->ssthresh(), 0u);                  // default: none
}

}  // namespace
}  // namespace ccas
