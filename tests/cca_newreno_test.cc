#include "src/cca/new_reno.h"

#include <gtest/gtest.h>

namespace ccas {
namespace {

AckEvent ack_of(uint64_t acked, Time now = Time::zero()) {
  AckEvent ev;
  ev.now = now;
  ev.newly_acked = acked;
  return ev;
}

TEST(NewReno, StartsAtInitialWindowInSlowStart) {
  NewReno reno;
  EXPECT_EQ(reno.cwnd(), 10u);
  EXPECT_TRUE(reno.in_slow_start());
  EXPECT_EQ(reno.name(), "newreno");
  EXPECT_TRUE(reno.pacing_rate().is_infinite());  // ACK-clocked
}

TEST(NewReno, SlowStartGrowsByAckedSegments) {
  NewReno reno;
  reno.on_ack(ack_of(2));
  EXPECT_EQ(reno.cwnd(), 12u);
  reno.on_ack(ack_of(12));
  EXPECT_EQ(reno.cwnd(), 24u);
}

TEST(NewReno, CongestionEventHalvesWindow) {
  NewReno reno;
  reno.on_ack(ack_of(90));  // cwnd = 100
  ASSERT_EQ(reno.cwnd(), 100u);
  reno.on_congestion_event(Time::zero(), 100);
  EXPECT_EQ(reno.cwnd(), 50u);
  EXPECT_EQ(reno.ssthresh(), 50u);
  EXPECT_FALSE(reno.in_slow_start());
}

TEST(NewReno, CongestionAvoidanceGrowsOnePerWindow) {
  NewReno reno;
  reno.on_ack(ack_of(90));
  reno.on_congestion_event(Time::zero(), 100);  // cwnd = ssthresh = 50
  // One cwnd's worth of ACKs -> +1.
  for (int i = 0; i < 50; ++i) reno.on_ack(ack_of(1));
  EXPECT_EQ(reno.cwnd(), 51u);
  // Another window (now 51 segments) -> +1.
  for (int i = 0; i < 51; ++i) reno.on_ack(ack_of(1));
  EXPECT_EQ(reno.cwnd(), 52u);
}

TEST(NewReno, NoGrowthDuringRecovery) {
  NewReno reno;
  reno.on_congestion_event(Time::zero(), 10);
  AckEvent ev = ack_of(5);
  ev.in_recovery = true;
  const uint64_t before = reno.cwnd();
  reno.on_ack(ev);
  EXPECT_EQ(reno.cwnd(), before);
}

TEST(NewReno, RtoCollapsesToOne) {
  NewReno reno;
  reno.on_ack(ack_of(90));
  reno.on_rto(Time::zero());
  EXPECT_EQ(reno.cwnd(), 1u);
  EXPECT_EQ(reno.ssthresh(), 50u);
  EXPECT_TRUE(reno.in_slow_start());
  // Slow start resumes until ssthresh.
  reno.on_ack(ack_of(1));
  EXPECT_EQ(reno.cwnd(), 2u);
}

TEST(NewReno, RespectsMinCwnd) {
  NewRenoConfig cfg;
  cfg.min_cwnd = 2;
  NewReno reno(cfg);
  for (int i = 0; i < 10; ++i) reno.on_congestion_event(Time::zero(), 2);
  EXPECT_EQ(reno.cwnd(), 2u);
}

TEST(NewReno, SlowStartCapsAtSsthresh) {
  NewReno reno;
  reno.on_ack(ack_of(90));                       // cwnd 100
  reno.on_congestion_event(Time::zero(), 100);   // ssthresh 50
  reno.on_rto(Time::zero());                     // cwnd 1, ssthresh 25
  reno.on_ack(ack_of(100));                      // would overshoot
  EXPECT_EQ(reno.cwnd(), 25u);                   // capped at ssthresh
}

// AIMD property: repeated cycles of growth and halving keep cwnd within a
// stable band (the sawtooth), for a range of window sizes.
class NewRenoSawtooth : public ::testing::TestWithParam<int> {};

TEST_P(NewRenoSawtooth, StaysInBand) {
  NewReno reno;
  const auto target = static_cast<uint64_t>(GetParam());
  // Grow to the target, then run 20 halve-and-regrow sawtooth cycles.
  while (reno.cwnd() < target) reno.on_ack(ack_of(1));
  for (int cycle = 0; cycle < 20; ++cycle) {
    const uint64_t peak = reno.cwnd();
    reno.on_congestion_event(Time::zero(), peak);
    // Multiplicative decrease: exactly half the peak (min-cwnd floored).
    EXPECT_GE(reno.cwnd() + 1, peak / 2);
    EXPECT_LE(reno.cwnd(), peak / 2 + 1);
    // Additive regrowth back to the peak.
    int acks = 0;
    while (reno.cwnd() < target && acks < 10'000'000) {
      reno.on_ack(ack_of(1));
      ++acks;
    }
    EXPECT_GE(reno.cwnd(), target);
    EXPECT_LE(reno.cwnd(), target + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, NewRenoSawtooth, ::testing::Values(8, 64, 512, 4096));

}  // namespace
}  // namespace ccas
