#include "src/cca/bbr2.h"

#include <gtest/gtest.h>

#include "src/net/packet.h"

namespace ccas {
namespace {

struct Bbr2Driver {
  explicit Bbr2Driver(Bbr2Config cfg = {}) : rng(1), bbr2(cfg, rng) {}

  void round(DataRate rate, TimeDelta rtt, uint64_t inflight, uint64_t acked = 10,
             uint64_t lost = 0, bool in_recovery = false) {
    now = now + rtt;
    AckEvent ev;
    ev.now = now;
    ev.newly_acked = acked;
    ev.newly_lost = lost;
    ev.inflight = inflight;
    ev.rate.delivery_rate = rate;
    ev.rate.prior_delivered = delivered;
    ev.rate.interval = rtt;
    delivered += acked;
    ev.delivered_total = delivered;
    ev.rtt_sample = rtt;
    ev.min_rtt = rtt;
    ev.in_recovery = in_recovery;
    bbr2.on_ack(ev);
  }

  Rng rng;
  Bbr2 bbr2;
  Time now = Time::zero();
  uint64_t delivered = 0;
};

uint64_t bdp_segs(DataRate rate, TimeDelta rtt) {
  return static_cast<uint64_t>(static_cast<double>(rate.bits_per_sec()) / 8.0 *
                               rtt.sec() / static_cast<double>(kMssBytes));
}

void reach_probe_bw(Bbr2Driver& d, DataRate bw, TimeDelta rtt) {
  d.round(bw * 0.25, rtt, 50);
  d.round(bw * 0.5, rtt, 100);
  d.round(bw, rtt, 200);
  d.round(bw, rtt, 400);
  d.round(bw, rtt, 400);
  d.round(bw, rtt, 400);
  d.round(bw, rtt, bdp_segs(bw, rtt) - 1);
  ASSERT_NE(d.bbr2.mode(), Bbr2::Mode::kStartup);
  ASSERT_NE(d.bbr2.mode(), Bbr2::Mode::kDrain);
}

TEST(Bbr2, StartupAndDrainMirrorV1) {
  Bbr2Driver d;
  EXPECT_EQ(d.bbr2.mode(), Bbr2::Mode::kStartup);
  EXPECT_EQ(d.bbr2.name(), "bbr2");
  reach_probe_bw(d, DataRate::mbps(40), TimeDelta::millis(20));
  EXPECT_TRUE(d.bbr2.filled_pipe());
}

TEST(Bbr2, LossRoundClampsInflightHi) {
  Bbr2Driver d;
  const DataRate bw = DataRate::mbps(40);
  const TimeDelta rtt = TimeDelta::millis(20);
  reach_probe_bw(d, bw, rtt);
  EXPECT_LT(d.bbr2.inflight_hi_segments(), 0.0);  // unset
  // A round with 20% loss (above the 2% threshold).
  d.round(bw, rtt, 300, 10, 5);
  d.round(bw, rtt, 300, 10, 0);  // round boundary applies the clamp
  EXPECT_GT(d.bbr2.inflight_hi_segments(), 0.0);
  EXPECT_LE(d.bbr2.inflight_hi_segments(), 320.0);
}

TEST(Bbr2, CwndRespectsInflightHi) {
  Bbr2Driver d;
  const DataRate bw = DataRate::mbps(40);
  const TimeDelta rtt = TimeDelta::millis(20);
  reach_probe_bw(d, bw, rtt);
  d.round(bw, rtt, 100, 10, 10);
  d.round(bw, rtt, 100, 10, 0);
  ASSERT_GT(d.bbr2.inflight_hi_segments(), 0.0);
  const double hi = d.bbr2.inflight_hi_segments();
  for (int i = 0; i < 20; ++i) d.round(bw, rtt, 100, 50);
  // inflight_hi may be raised slightly by probe-up epochs; the window must
  // stay in its vicinity rather than at the unconstrained 2xBDP.
  EXPECT_LE(static_cast<double>(d.bbr2.cwnd()), hi * 1.4 + 1.0);
  EXPECT_LT(static_cast<double>(d.bbr2.cwnd()),
            2.0 * static_cast<double>(bdp_segs(bw, rtt)));
}

TEST(Bbr2, SmallLossBelowThresholdIsIgnored) {
  Bbr2Driver d;
  const DataRate bw = DataRate::mbps(40);
  const TimeDelta rtt = TimeDelta::millis(20);
  reach_probe_bw(d, bw, rtt);
  // 1 loss out of ~300 delivered: below 2%.
  d.round(bw, rtt, 300, 150, 1);
  d.round(bw, rtt, 300, 150, 0);
  EXPECT_LT(d.bbr2.inflight_hi_segments(), 0.0);
}

TEST(Bbr2, ProbeRttUsesHalfBdpFloor) {
  Bbr2Config cfg;
  Bbr2Driver d(cfg);
  const DataRate bw = DataRate::mbps(40);
  const TimeDelta rtt = TimeDelta::millis(500);
  reach_probe_bw(d, bw, rtt);
  // Grow the window to its 2xBDP target before the min-rtt filter expires.
  for (int i = 0; i < 25 && d.bbr2.mode() != Bbr2::Mode::kProbeRtt; ++i) {
    d.round(bw, rtt, bdp_segs(bw, rtt), /*acked=*/600);
  }
  ASSERT_EQ(d.bbr2.mode(), Bbr2::Mode::kProbeRtt);
  d.round(bw, rtt, bdp_segs(bw, rtt), 600);
  // Floor is ~0.5 BDP (v1 would clamp to 4 packets on this path).
  const auto half_bdp = static_cast<double>(bdp_segs(bw, rtt)) / 2.0;
  EXPECT_NEAR(static_cast<double>(d.bbr2.cwnd()), half_bdp, half_bdp * 0.3 + 4.0);
  EXPECT_GT(d.bbr2.cwnd(), 100u);
}

TEST(Bbr2, RecoveryRestoresPriorCwnd) {
  Bbr2Driver d;
  const DataRate bw = DataRate::mbps(40);
  const TimeDelta rtt = TimeDelta::millis(20);
  reach_probe_bw(d, bw, rtt);
  for (int i = 0; i < 20; ++i) d.round(bw, rtt, bdp_segs(bw, rtt), 50);
  const uint64_t before = d.bbr2.cwnd();
  d.bbr2.on_congestion_event(d.now, 100);
  EXPECT_LE(d.bbr2.cwnd(), 101u);
  d.bbr2.on_recovery_exit(d.now, 100);
  EXPECT_GE(d.bbr2.cwnd(), before);
}

TEST(Bbr2, RegisteredInRegistry) {
  Rng rng(1);
  auto cca = make_cca("bbr2", rng);
  EXPECT_EQ(cca->name(), "bbr2");
  EXPECT_TRUE(cca->owns_recovery_cwnd());
}

}  // namespace
}  // namespace ccas
