#include "src/tcp/rtt_estimator.h"

#include <gtest/gtest.h>

namespace ccas {
namespace {

TEST(RttEstimator, InitialRtoBeforeSamples) {
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), TimeDelta::seconds(1));
}

TEST(RttEstimator, FirstSampleInitializesPerRfc6298) {
  RttEstimator est;
  est.add_sample(TimeDelta::millis(100));
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.smoothed_rtt(), TimeDelta::millis(100));
  EXPECT_EQ(est.rtt_var(), TimeDelta::millis(50));
  // RTO = SRTT + max(4*RTTVAR, min_rto) = 100 + 200 = 300 ms.
  EXPECT_EQ(est.rto(), TimeDelta::millis(300));
}

TEST(RttEstimator, EwmaUpdates) {
  RttEstimator est;
  est.add_sample(TimeDelta::millis(100));
  est.add_sample(TimeDelta::millis(200));
  // SRTT = 7/8*100 + 1/8*200 = 112.5 ms.
  EXPECT_EQ(est.smoothed_rtt(), TimeDelta::micros(112'500));
  // RTTVAR = 3/4*50 + 1/4*|100-200| = 62.5 ms.
  EXPECT_EQ(est.rtt_var(), TimeDelta::micros(62'500));
}

TEST(RttEstimator, RtoHasVarianceFloor) {
  RttEstimator est;
  // Perfectly stable path: variance decays, but the floor keeps
  // RTO >= srtt + 200 ms (the Linux rto_min semantics).
  for (int i = 0; i < 200; ++i) est.add_sample(TimeDelta::millis(260));
  EXPECT_GE(est.rto(), TimeDelta::millis(260) + TimeDelta::millis(200));
  EXPECT_LE(est.rto(), TimeDelta::millis(260) + TimeDelta::millis(210));
}

TEST(RttEstimator, RttvarFloorBoundaryExact) {
  // Linux semantics: RTO = SRTT + max(4*RTTVAR, rto_min) — the floor is on
  // the variance term, not on the total. These lock the exact boundary.
  {
    // 4*RTTVAR == rto_min exactly (first sample 100 ms -> RTTVAR 50 ms):
    // both sides of the max agree, RTO = 100 + 200.
    RttEstimator est;
    est.add_sample(TimeDelta::millis(100));
    EXPECT_EQ(est.rto(), TimeDelta::millis(300));
  }
  {
    // 4*RTTVAR one step above the floor (first sample 101 ms -> RTTVAR
    // 50.5 ms, 4*RTTVAR = 202 ms > 200 ms): the variance term wins.
    RttEstimator est;
    est.add_sample(TimeDelta::millis(101));
    EXPECT_EQ(est.rto(), TimeDelta::millis(101) + TimeDelta::micros(202'000));
  }
  {
    // Decayed variance on a stable path: RTTVAR -> 0, so the floor fully
    // determines the margin and RTO == SRTT + rto_min exactly. Were the
    // floor applied to the total instead (max(srtt + 4*rttvar, rto_min)),
    // this would collapse to 260 ms and fire on every delayed ACK.
    RttEstimator est;
    for (int i = 0; i < 200; ++i) est.add_sample(TimeDelta::millis(260));
    EXPECT_EQ(est.rtt_var(), TimeDelta::zero());
    EXPECT_EQ(est.rto(), TimeDelta::millis(260) + TimeDelta::millis(200));
  }
}

TEST(RttEstimator, RttvarIntegerDecaySequence) {
  // The EWMA is integer nanosecond arithmetic; lock the first few decay
  // steps on a stable path (err = 0 -> RTTVAR := 3/4 RTTVAR each sample).
  RttEstimator est;
  est.add_sample(TimeDelta::millis(100));
  EXPECT_EQ(est.rtt_var(), TimeDelta::millis(50));
  est.add_sample(TimeDelta::millis(100));
  EXPECT_EQ(est.rtt_var(), TimeDelta::micros(37'500));
  est.add_sample(TimeDelta::millis(100));
  EXPECT_EQ(est.rtt_var(), TimeDelta::micros(28'125));
  // 4*RTTVAR dipped below rto_min (112.5 ms < 200 ms): floor takes over.
  EXPECT_EQ(est.rto(), TimeDelta::millis(300));
}

TEST(RttEstimator, CustomMinRtoMovesTheFloor) {
  RttEstimator::Config cfg;
  cfg.min_rto = TimeDelta::millis(50);
  RttEstimator est(cfg);
  for (int i = 0; i < 200; ++i) est.add_sample(TimeDelta::millis(30));
  EXPECT_EQ(est.rto(), TimeDelta::millis(30) + TimeDelta::millis(50));
}

TEST(RttEstimator, TracksMinAndLatest) {
  RttEstimator est;
  est.add_sample(TimeDelta::millis(50));
  est.add_sample(TimeDelta::millis(20));
  est.add_sample(TimeDelta::millis(80));
  EXPECT_EQ(est.min_rtt(), TimeDelta::millis(20));
  EXPECT_EQ(est.latest_rtt(), TimeDelta::millis(80));
}

TEST(RttEstimator, IgnoresNonPositiveSamples) {
  RttEstimator est;
  est.add_sample(TimeDelta::zero());
  est.add_sample(TimeDelta::millis(-5));
  EXPECT_FALSE(est.has_sample());
}

TEST(RttEstimator, RtoClampedToMax) {
  RttEstimator::Config cfg;
  cfg.max_rto = TimeDelta::seconds(2);
  RttEstimator est(cfg);
  est.add_sample(TimeDelta::seconds(10));
  EXPECT_EQ(est.rto(), TimeDelta::seconds(2));
}

class RttEstimatorConvergence : public ::testing::TestWithParam<int64_t> {};

TEST_P(RttEstimatorConvergence, SrttConvergesToStableRtt) {
  RttEstimator est;
  const TimeDelta rtt = TimeDelta::millis(GetParam());
  for (int i = 0; i < 100; ++i) est.add_sample(rtt);
  EXPECT_NEAR(est.smoothed_rtt().ms(), rtt.ms(), rtt.ms() * 0.01 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(StableRtts, RttEstimatorConvergence,
                         ::testing::Values(1, 20, 100, 200, 500));

}  // namespace
}  // namespace ccas
