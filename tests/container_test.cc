// Tests for the hot-path containers: RunList (run-length interval set
// behind the SACK scoreboard and the receiver's reassembly tracker) and
// RingBuffer (the deque replacement on the packet FIFOs and the scoreboard
// window). RunList is additionally property-checked against std::set.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/util/ring_buffer.h"
#include "src/util/run_list.h"

namespace ccas {
namespace {

std::vector<std::pair<uint64_t, uint64_t>> runs_of(const RunList& rl) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (size_t i = 0; i < rl.run_count(); ++i) {
    out.emplace_back(rl.run(i).start, rl.run(i).end);
  }
  return out;
}

TEST(RunList, StartsEmpty) {
  RunList rl;
  EXPECT_TRUE(rl.empty());
  EXPECT_EQ(rl.run_count(), 0u);
  EXPECT_FALSE(rl.contains(0));
  EXPECT_FALSE(rl.first_at_or_after(0).has_value());
}

TEST(RunList, AddMergesOverlappingAndAdjacent) {
  RunList rl;
  rl.add(10, 20);
  rl.add(30, 40);
  rl.add(20, 30);  // adjacent on both sides: everything fuses
  ASSERT_EQ(rl.run_count(), 1u);
  EXPECT_EQ(rl.run(0).start, 10u);
  EXPECT_EQ(rl.run(0).end, 40u);
}

TEST(RunList, AddKeepsDisjointRunsSorted) {
  RunList rl;
  rl.add(50, 60);
  rl.add(10, 20);
  rl.add(30, 40);
  EXPECT_EQ(runs_of(rl),
            (std::vector<std::pair<uint64_t, uint64_t>>{{10, 20}, {30, 40}, {50, 60}}));
  EXPECT_TRUE(rl.contains(35));
  EXPECT_FALSE(rl.contains(25));
  EXPECT_EQ(rl.first_at_or_after(25).value(), 30u);
  EXPECT_EQ(rl.first_at_or_after(35).value(), 35u);
  EXPECT_FALSE(rl.first_at_or_after(60).has_value());
}

TEST(RunList, RemoveSplitsTrimsAndDeletes) {
  RunList rl;
  rl.add(0, 100);
  rl.remove(40, 60);  // split in the middle
  EXPECT_EQ(runs_of(rl),
            (std::vector<std::pair<uint64_t, uint64_t>>{{0, 40}, {60, 100}}));
  rl.remove(30, 70);  // right-trim + left-trim across the gap
  EXPECT_EQ(runs_of(rl),
            (std::vector<std::pair<uint64_t, uint64_t>>{{0, 30}, {70, 100}}));
  rl.remove(0, 30);  // exact deletion of the first run
  EXPECT_EQ(runs_of(rl), (std::vector<std::pair<uint64_t, uint64_t>>{{70, 100}}));
  rl.remove(200, 300);  // no overlap: no-op
  EXPECT_EQ(rl.run_count(), 1u);
}

TEST(RunList, RunContaining) {
  RunList rl;
  rl.add(10, 20);
  const auto r = rl.run_containing(15);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->start, 10u);
  EXPECT_EQ(r->end, 20u);
  EXPECT_FALSE(rl.run_containing(20).has_value());  // end is exclusive
}

TEST(RunList, EraseBelowErodesFront) {
  RunList rl;
  for (uint64_t i = 0; i < 100; ++i) rl.add(i * 10, i * 10 + 5);
  rl.erase_below(501);  // drops 50 runs, trims the 51st
  EXPECT_EQ(rl.run_count(), 50u);
  EXPECT_EQ(rl.run(0).start, 501u);
  EXPECT_EQ(rl.run(0).end, 505u);
  EXPECT_FALSE(rl.contains(500));
  EXPECT_TRUE(rl.contains(501));
  // Erase-below inside a gap leaves the next run whole.
  rl.erase_below(508);
  EXPECT_EQ(rl.run(0).start, 510u);
}

TEST(RunList, ForEachGapEmitsComplement) {
  RunList rl;
  rl.add(10, 20);
  rl.add(30, 40);
  std::vector<std::pair<uint64_t, uint64_t>> gaps;
  rl.for_each_gap(0, 50, [&](uint64_t a, uint64_t b) { gaps.emplace_back(a, b); });
  EXPECT_EQ(gaps,
            (std::vector<std::pair<uint64_t, uint64_t>>{{0, 10}, {20, 30}, {40, 50}}));
  gaps.clear();
  rl.for_each_gap(12, 18, [&](uint64_t a, uint64_t b) { gaps.emplace_back(a, b); });
  EXPECT_TRUE(gaps.empty());  // fully covered
  gaps.clear();
  rl.for_each_gap(15, 35, [&](uint64_t a, uint64_t b) { gaps.emplace_back(a, b); });
  EXPECT_EQ(gaps, (std::vector<std::pair<uint64_t, uint64_t>>{{20, 30}}));
}

// Property check against std::set over a bounded universe: every mixed
// add/remove/erase_below trace must leave membership, ordering queries and
// gap walks identical.
TEST(RunListProperty, MatchesSetSemantics) {
  for (const uint64_t seed : {1u, 2u, 42u, 1234u}) {
    SCOPED_TRACE(seed);
    std::mt19937_64 rng(seed);
    RunList rl;
    std::set<uint64_t> ref;
    constexpr uint64_t kUniverse = 400;
    uint64_t floor = 0;  // erase_below is monotone, as in the scoreboard
    for (int step = 0; step < 3000; ++step) {
      const uint64_t op = rng() % 100;
      const uint64_t a = floor + rng() % (kUniverse - floor);
      const uint64_t b = a + 1 + rng() % 12;
      if (op < 45) {
        rl.add(a, b);
        for (uint64_t v = a; v < b; ++v) ref.insert(v);
      } else if (op < 80) {
        rl.remove(a, b);
        for (uint64_t v = a; v < b; ++v) ref.erase(v);
      } else if (op < 90) {
        floor = std::min(a, kUniverse - 1);
        rl.erase_below(floor);
        ref.erase(ref.begin(), ref.lower_bound(floor));
      } else {
        std::vector<std::pair<uint64_t, uint64_t>> gaps;
        rl.for_each_gap(a, b, [&](uint64_t ga, uint64_t gb) {
          gaps.emplace_back(ga, gb);
        });
        for (uint64_t v = a; v < b; ++v) {
          const bool in_gap = [&] {
            for (const auto& [ga, gb] : gaps) {
              if (v >= ga && v < gb) return true;
            }
            return false;
          }();
          ASSERT_NE(in_gap, ref.count(v) > 0) << "gap v=" << v << " step " << step;
        }
      }
      // Membership and first_at_or_after at a few probe points.
      for (int probe = 0; probe < 4; ++probe) {
        const uint64_t v = floor + rng() % (kUniverse - floor);
        ASSERT_EQ(rl.contains(v), ref.count(v) > 0) << "v=" << v << " step " << step;
        const auto got = rl.first_at_or_after(v);
        const auto it = ref.lower_bound(v);
        if (it == ref.end()) {
          ASSERT_FALSE(got.has_value()) << "v=" << v << " step " << step;
        } else {
          ASSERT_TRUE(got.has_value()) << "v=" << v << " step " << step;
          ASSERT_EQ(*got, *it) << "v=" << v << " step " << step;
        }
      }
      // Structural invariant: sorted, disjoint, non-adjacent, non-empty.
      for (size_t i = 0; i < rl.run_count(); ++i) {
        ASSERT_LT(rl.run(i).start, rl.run(i).end) << "step " << step;
        if (i > 0) {
          // prev.end < start (adjacent runs would have merged)
          ASSERT_LT(rl.run(i - 1).end, rl.run(i).start) << "step " << step;
        }
      }
    }
  }
}

TEST(RingBuffer, PushPopFifoAcrossGrowth) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  for (int i = 0; i < 100; ++i) rb.push_back(i);  // forces several growths
  EXPECT_EQ(rb.size(), 100u);
  EXPECT_EQ(rb.front(), 0);
  EXPECT_EQ(rb.back(), 99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rb.pop_front(), i);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsAroundWithoutGrowing) {
  RingBuffer<int> rb;
  // Breathe below capacity so head_ wraps the power-of-two buffer.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) rb.push_back(round * 7 + i);
    for (int i = 0; i < 7; ++i) EXPECT_EQ(rb.pop_front(), round * 7 + i);
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, IndexAndEmplace) {
  RingBuffer<std::string> rb;
  rb.push_back("a");
  rb.emplace_back() = "b";
  rb.push_back("c");
  rb.drop_front();
  EXPECT_EQ(rb[0], "b");
  EXPECT_EQ(rb[1], "c");
  rb[1] = "C";
  EXPECT_EQ(rb.back(), "C");
  rb.clear();
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, GrowPreservesOrderWhenWrapped) {
  RingBuffer<int> rb;
  for (int i = 0; i < 16; ++i) rb.push_back(i);  // fill initial capacity
  for (int i = 0; i < 10; ++i) rb.drop_front();
  for (int i = 16; i < 40; ++i) rb.push_back(i);  // wraps, then grows
  EXPECT_EQ(rb.size(), 30u);
  for (int i = 10; i < 40; ++i) EXPECT_EQ(rb.pop_front(), i);
}

}  // namespace
}  // namespace ccas
