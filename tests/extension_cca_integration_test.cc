// End-to-end behaviour of the extension CCAs (Vegas, BBRv2-lite) on the
// dumbbell: the qualitative properties the literature predicts for them.
#include <gtest/gtest.h>

#include "src/harness/runner.h"

namespace ccas {
namespace {

ExperimentSpec spec_for(DataRate rate, int64_t buffer, TimeDelta measure) {
  ExperimentSpec spec;
  spec.scenario.net.bottleneck_rate = rate;
  spec.scenario.net.buffer_bytes = buffer;
  spec.scenario.stagger = TimeDelta::millis(500);
  spec.scenario.warmup = TimeDelta::seconds(5);
  spec.scenario.measure = measure;
  spec.seed = 77;
  return spec;
}

TEST(VegasIntegration, SingleFlowSaturatesWithTinyQueue) {
  ExperimentSpec spec =
      spec_for(DataRate::mbps(50), 1'500'000, TimeDelta::seconds(20));
  spec.groups.push_back(FlowGroup{"vegas", 1, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  EXPECT_GT(r.utilization, 0.9);
  // Vegas's defining property: it keeps only alpha..beta segments queued,
  // so there are essentially no drops (loss-based CCAs overflow instead).
  EXPECT_EQ(r.queue.dropped_packets, 0u);
  for (const auto& f : r.flows) {
    // RTT stays near base: self-induced queueing of a few segments only.
    EXPECT_LT(f.mean_rtt, TimeDelta::millis(25));
  }
}

TEST(VegasIntegration, IntraVegasModeratelyFairWithSimultaneousStarts) {
  // Vegas's alpha..beta band admits a spread of equilibria (any windows
  // whose self-queueing lies in [2, 4] segments are stable), and the
  // mutual slow start biases each flow's base-RTT estimate — so moderate
  // unfairness is expected even in the best case; the literature reports
  // the same. The defining property is that nobody is starved and the
  // link stays full with a near-empty queue.
  ExperimentSpec spec =
      spec_for(DataRate::mbps(50), 1'500'000, TimeDelta::seconds(40));
  spec.scenario.stagger = TimeDelta::millis(1);
  spec.groups.push_back(FlowGroup{"vegas", 4, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  EXPECT_GT(r.jfi_all(), 0.5);
  EXPECT_GT(r.utilization, 0.9);
  for (const auto& f : r.flows) EXPECT_GT(f.goodput_bps, 1e6);  // nobody starved
}

TEST(VegasIntegration, LateJoinerBiasReducesFairness) {
  ExperimentSpec spec =
      spec_for(DataRate::mbps(50), 1'500'000, TimeDelta::seconds(40));
  spec.scenario.stagger = TimeDelta::seconds(5);  // strongly staggered
  spec.groups.push_back(FlowGroup{"vegas", 4, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  EXPECT_GT(r.utilization, 0.9);
  EXPECT_LT(r.jfi_all(), 0.95);  // the base-RTT bias shows up
}

TEST(VegasIntegration, StarvedByLossBasedCompetition) {
  // The classic result: NewReno fills the queue; Vegas reads the inflated
  // RTT as congestion and retreats.
  ExperimentSpec spec =
      spec_for(DataRate::mbps(50), 1'500'000, TimeDelta::seconds(40));
  spec.groups.push_back(FlowGroup{"vegas", 2, TimeDelta::millis(20)});
  spec.groups.push_back(FlowGroup{"newreno", 2, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  EXPECT_LT(r.groups[0].throughput_share, 0.25);
}

TEST(Bbr2Integration, SingleFlowSaturates) {
  ExperimentSpec spec =
      spec_for(DataRate::mbps(50), 1'500'000, TimeDelta::seconds(20));
  spec.groups.push_back(FlowGroup{"bbr2", 1, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  EXPECT_GT(r.utilization, 0.85);
}

TEST(Bbr2Integration, GentlerToCubicThanBbrV1) {
  // BBRv2's loss response (inflight_hi / beta cuts) makes it far less
  // brutal to loss-based flows in shallow buffers than v1.
  auto share_of = [&](const char* bbr_flavor) {
    ExperimentSpec spec =
        spec_for(DataRate::mbps(50), 250'000 /* ~2x BDP@20ms */,
                 TimeDelta::seconds(40));
    spec.groups.push_back(FlowGroup{bbr_flavor, 2, TimeDelta::millis(20)});
    spec.groups.push_back(FlowGroup{"cubic", 2, TimeDelta::millis(20)});
    return run_experiment(spec).groups[0].throughput_share;
  };
  const double v1 = share_of("bbr");
  const double v2 = share_of("bbr2");
  EXPECT_LT(v2, v1);
  EXPECT_GT(v2, 0.05);  // not starved either
}

TEST(Bbr2Integration, LowerLossRateThanV1UnderSelfCompetition) {
  auto drops_of = [&](const char* flavor) {
    // Shallow buffer (~0.7 BDP at 20 ms): v1's 2x-BDP aggregate inflight
    // must overflow it.
    ExperimentSpec spec =
        spec_for(DataRate::mbps(50), 60'000, TimeDelta::seconds(30));
    spec.groups.push_back(FlowGroup{flavor, 8, TimeDelta::millis(20)});
    return run_experiment(spec).queue.dropped_packets;
  };
  // v1 ignores loss and keeps hammering a shallow buffer; v2 backs off.
  EXPECT_LT(drops_of("bbr2"), drops_of("bbr"));
}

}  // namespace
}  // namespace ccas
