#include "src/cca/copa.h"

#include <gtest/gtest.h>

#include "src/harness/runner.h"
#include "src/util/rng.h"

namespace ccas {
namespace {

// Drives Copa with synthetic ACKs; every call is a packet-timed round.
struct CopaDriver {
  explicit CopaDriver(CopaConfig cfg = {}) : copa(cfg) {}

  void round(TimeDelta rtt, uint64_t acked = 4, uint64_t lost = 0) {
    now = now + rtt;
    AckEvent ev;
    ev.now = now;
    ev.newly_acked = acked;
    ev.newly_lost = lost;
    ev.rate.delivery_rate = DataRate::mbps(1);  // valid => round tracking
    ev.rate.prior_delivered = delivered;
    delivered += acked;
    ev.delivered_total = delivered;
    ev.inflight = copa.cwnd();
    ev.rtt_sample = rtt;
    ev.min_rtt = rtt;
    copa.on_ack(ev);
  }

  Copa copa;
  Time now = Time::zero();
  uint64_t delivered = 0;
};

TEST(Copa, Defaults) {
  Copa copa;
  EXPECT_EQ(copa.cwnd(), 10u);
  EXPECT_EQ(copa.name(), "copa");
  EXPECT_FALSE(copa.competitive_mode());
  EXPECT_DOUBLE_EQ(copa.current_delta(), 0.5);
}

TEST(Copa, GrowsWhenQueueingDelayIsLow) {
  CopaDriver d;
  // Tiny standing delay: target rate is enormous, direction is up.
  d.round(TimeDelta::millis(20));
  d.round(TimeDelta::micros(20'100));
  const uint64_t before = d.copa.cwnd();
  for (int i = 0; i < 20; ++i) d.round(TimeDelta::micros(20'100));
  EXPECT_GT(d.copa.cwnd(), before);
  EXPECT_FALSE(d.copa.competitive_mode());
}

TEST(Copa, ShrinksWhenQueueingDelayIsHigh) {
  CopaDriver d;
  d.round(TimeDelta::millis(20));  // establishes min rtt
  for (int i = 0; i < 10; ++i) d.round(TimeDelta::millis(21));
  // Standing delay 60 ms: target = 1/(0.5 * 0.06) = 33 pkts/s, far below
  // the current rate -> direction down.
  const uint64_t grown = d.copa.cwnd();
  for (int i = 0; i < 30; ++i) d.round(TimeDelta::millis(80));
  EXPECT_LT(d.copa.cwnd(), grown);
}

TEST(Copa, VelocityResetsOnDirectionFlip) {
  CopaDriver d;
  d.round(TimeDelta::millis(20));
  for (int i = 0; i < 12; ++i) d.round(TimeDelta::micros(20'050));
  const double v_up = d.copa.velocity();
  EXPECT_GE(v_up, 1.0);
  d.round(TimeDelta::millis(90));  // flip to down
  d.round(TimeDelta::millis(90));
  EXPECT_LE(d.copa.velocity(), v_up);
}

TEST(Copa, EntersCompetitiveModeWhenQueueNeverDrains) {
  CopaDriver d;
  d.round(TimeDelta::millis(20));
  d.round(TimeDelta::millis(100));  // expands the observed delay range
  // Standing delay persistently ~half the range: a buffer-filler is here.
  for (int i = 0; i < 10; ++i) d.round(TimeDelta::millis(60));
  EXPECT_TRUE(d.copa.competitive_mode());
  EXPECT_GT(1.0 / d.copa.current_delta(), 1.0 / 0.5);  // delta shrank
}

TEST(Copa, DefaultModeIgnoresIsolatedLoss) {
  CopaDriver d;
  d.round(TimeDelta::millis(20));
  for (int i = 0; i < 10; ++i) d.round(TimeDelta::micros(20'050));
  const uint64_t before = d.copa.cwnd();
  d.copa.on_congestion_event(d.now, before);
  EXPECT_EQ(d.copa.cwnd(), before);  // no multiplicative decrease
}

TEST(Copa, RtoResetsToFloor) {
  CopaDriver d;
  d.round(TimeDelta::millis(20));
  for (int i = 0; i < 10; ++i) d.round(TimeDelta::micros(20'050));
  d.copa.on_rto(d.now);
  EXPECT_EQ(d.copa.cwnd(), 2u);
}

TEST(Copa, PacesAtTwiceRate) {
  CopaDriver d;
  d.round(TimeDelta::millis(20));
  d.round(TimeDelta::millis(20));
  ASSERT_FALSE(d.copa.pacing_rate().is_infinite());
  const double expect =
      2.0 * static_cast<double>(d.copa.cwnd()) * 1448.0 * 8.0 / 0.02;
  EXPECT_NEAR(d.copa.pacing_rate().mbps_f(), expect / 1e6, expect / 1e6 * 0.3);
}

// End-to-end: a lone Copa flow fills the link while keeping the queue to a
// few packets (its defining property vs loss-based CCAs).
TEST(CopaIntegration, SaturatesWithSmallStandingQueue) {
  ExperimentSpec spec;
  spec.scenario.net.bottleneck_rate = DataRate::mbps(50);
  spec.scenario.net.buffer_bytes = 1'500'000;
  spec.scenario.stagger = TimeDelta::millis(100);
  spec.scenario.warmup = TimeDelta::seconds(5);
  spec.scenario.measure = TimeDelta::seconds(20);
  spec.groups.push_back(FlowGroup{"copa", 1, TimeDelta::millis(20)});
  spec.seed = 3;
  const ExperimentResult r = run_experiment(spec);
  EXPECT_GT(r.utilization, 0.8);
  for (const auto& f : r.flows) {
    // Copa's velocity mechanism overshoots and oscillates around its
    // target, so the average queue is tens of packets rather than the
    // ideal 1/delta — but still an order of magnitude below what a
    // loss-based CCA builds here (~240 ms of queueing on this path).
    EXPECT_LT(f.mean_rtt, TimeDelta::millis(60));
  }
}

TEST(CopaIntegration, Registered) {
  Rng rng(1);
  auto cca = make_cca("copa", rng);
  EXPECT_EQ(cca->name(), "copa");
}

}  // namespace
}  // namespace ccas
