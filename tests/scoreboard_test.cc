#include "src/tcp/sack_scoreboard.h"

#include <gtest/gtest.h>

namespace ccas {
namespace {

// Helpers: no-op callbacks.
auto nop = [](uint64_t, SegmentState&) {};

void extend_to(SackScoreboard& sb, uint64_t next) {
  while (sb.snd_nxt() < next) sb.extend();
}

TEST(Scoreboard, StartsEmpty) {
  SackScoreboard sb;
  EXPECT_TRUE(sb.empty());
  EXPECT_EQ(sb.snd_una(), 0u);
  EXPECT_EQ(sb.snd_nxt(), 0u);
  EXPECT_EQ(sb.sacked_count(), 0u);
  EXPECT_EQ(sb.lost_count(), 0u);
}

TEST(Scoreboard, ExtendGrowsWindow) {
  SackScoreboard sb;
  extend_to(sb, 5);
  EXPECT_EQ(sb.snd_nxt(), 5u);
  EXPECT_EQ(sb.window_size(), 5u);
  EXPECT_TRUE(sb.contains(0));
  EXPECT_TRUE(sb.contains(4));
  EXPECT_FALSE(sb.contains(5));
}

TEST(Scoreboard, AdvanceUnaDeliversAndPops) {
  SackScoreboard sb;
  extend_to(sb, 5);
  uint64_t delivered = 0;
  const uint64_t n =
      sb.advance_una(3, [&](uint64_t seq, SegmentState&) { delivered += seq; });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(delivered, 0u + 1 + 2);
  EXPECT_EQ(sb.snd_una(), 3u);
  EXPECT_EQ(sb.window_size(), 2u);
}

TEST(Scoreboard, AdvanceUnaSkipsAlreadySacked) {
  SackScoreboard sb;
  extend_to(sb, 4);
  EXPECT_EQ(sb.apply_sack(1, 3, nop), 2u);
  EXPECT_EQ(sb.sacked_count(), 2u);
  // Segments 1 and 2 were already delivered via SACK.
  EXPECT_EQ(sb.advance_una(4, nop), 2u);  // only 0 and 3 are new
  EXPECT_EQ(sb.sacked_count(), 0u);
  EXPECT_TRUE(sb.empty());
}

TEST(Scoreboard, AdvanceUnaOutOfRangeThrows) {
  SackScoreboard sb;
  extend_to(sb, 2);
  EXPECT_THROW(sb.advance_una(3, nop), std::out_of_range);
}

TEST(Scoreboard, ApplySackIsIdempotentAndClamped) {
  SackScoreboard sb;
  extend_to(sb, 10);
  EXPECT_EQ(sb.apply_sack(4, 7, nop), 3u);
  EXPECT_EQ(sb.apply_sack(4, 7, nop), 0u);  // idempotent
  EXPECT_EQ(sb.apply_sack(8, 100, nop), 2u);  // clamped to snd_nxt
  EXPECT_EQ(sb.sacked_count(), 5u);
  EXPECT_EQ(sb.highest_sacked_end(), 10u);
}

TEST(Scoreboard, SackRescuesLostMark) {
  SackScoreboard sb;
  extend_to(sb, 10);
  sb.mark_lost(2, nop);
  EXPECT_EQ(sb.lost_count(), 1u);
  // The "lost" segment turns out to have arrived.
  sb.apply_sack(2, 3, nop);
  EXPECT_EQ(sb.lost_count(), 0u);
  EXPECT_EQ(sb.sacked_count(), 1u);
}

TEST(Scoreboard, MarkLostBySackUsesDupThresh) {
  SackScoreboard sb;
  extend_to(sb, 10);
  // SACK 5..6: highest sacked seq = 5; segments <= 5-3 = 2 are lost.
  sb.apply_sack(5, 6, nop);
  uint64_t lost = 0;
  sb.mark_lost_by_sack(3, [&](uint64_t, SegmentState&) { ++lost; });
  EXPECT_EQ(lost, 3u);  // segments 0, 1, 2
  EXPECT_EQ(sb.lost_count(), 3u);
  // Scan is monotonic: nothing new without new SACK progress.
  EXPECT_EQ(sb.mark_lost_by_sack(3, nop), 0u);
  // SACK 8..9: highest = 8; now segments 3, 4 qualify (5 is sacked).
  sb.apply_sack(8, 9, nop);
  EXPECT_EQ(sb.mark_lost_by_sack(3, nop), 2u);
  EXPECT_EQ(sb.lost_count(), 5u);
}

TEST(Scoreboard, MarkLostBySackNeedsEnoughSackedAbove) {
  SackScoreboard sb;
  extend_to(sb, 10);
  sb.apply_sack(1, 2, nop);  // highest sacked seq = 1 < dup_thresh
  EXPECT_EQ(sb.mark_lost_by_sack(3, nop), 0u);
}

TEST(Scoreboard, NoteTransmitClearsLost) {
  SackScoreboard sb;
  extend_to(sb, 5);
  sb.mark_lost(0, nop);
  EXPECT_EQ(sb.lost_count(), 1u);
  sb.note_transmit(0);
  EXPECT_EQ(sb.lost_count(), 0u);
  EXPECT_FALSE(sb.seg(0).lost);
  // Retransmitted segments are not re-marked by the monotonic scan.
  sb.apply_sack(5, 5, nop);
  EXPECT_EQ(sb.mark_lost_by_sack(3, nop), 0u);
}

TEST(Scoreboard, MarkAllLostOnRto) {
  SackScoreboard sb;
  extend_to(sb, 6);
  for (uint64_t s = 0; s < 6; ++s) sb.note_transmit(s);
  sb.apply_sack(2, 3, nop);
  const uint64_t lost = sb.mark_all_lost(nop);
  EXPECT_EQ(lost, 5u);  // all but the SACKed segment 2
  EXPECT_EQ(sb.lost_count(), 5u);
  for (uint64_t s = 0; s < 6; ++s) EXPECT_FALSE(sb.seg(s).outstanding);
  // After RTO the scan cursor resets; retransmit + re-mark cycle works.
  sb.note_transmit(0);
  EXPECT_EQ(sb.lost_count(), 4u);
}

TEST(Scoreboard, FindLostFrom) {
  SackScoreboard sb;
  extend_to(sb, 10);
  sb.mark_lost(2, nop);
  sb.mark_lost(7, nop);
  EXPECT_EQ(sb.find_lost_from(0).value(), 2u);
  EXPECT_EQ(sb.find_lost_from(3).value(), 7u);
  EXPECT_FALSE(sb.find_lost_from(8).has_value());
}

TEST(Scoreboard, FirstOutstanding) {
  SackScoreboard sb;
  extend_to(sb, 5);
  EXPECT_FALSE(sb.first_outstanding().has_value());
  sb.note_transmit(3);
  EXPECT_EQ(sb.first_outstanding().value(), 3u);
}

TEST(Scoreboard, SegOutOfWindowThrows) {
  SackScoreboard sb;
  extend_to(sb, 3);
  sb.advance_una(1, nop);
  EXPECT_THROW((void)sb.seg(0), std::out_of_range);
  EXPECT_THROW((void)sb.seg(3), std::out_of_range);
}

// Property sweep: random SACK/ACK sequences keep counters consistent with
// a brute-force recount.
class ScoreboardProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScoreboardProperty, CountersMatchBruteForce) {
  SackScoreboard sb;
  uint64_t state = GetParam();
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  extend_to(sb, 50);
  for (int step = 0; step < 200; ++step) {
    const uint64_t kind = next() % 4;
    const uint64_t width = sb.snd_nxt() - sb.snd_una();
    if (kind == 0 && width > 0) {
      const uint64_t s = sb.snd_una() + next() % width;
      const uint64_t e = std::min(s + 1 + next() % 5, sb.snd_nxt());
      sb.apply_sack(s, e, nop);
      sb.mark_lost_by_sack(3, nop);
    } else if (kind == 1 && width > 0) {
      sb.advance_una(sb.snd_una() + 1 + next() % width, nop);
    } else if (kind == 2) {
      for (uint64_t i = 0; i < 1 + next() % 4; ++i) sb.extend();
    } else if (kind == 3 && sb.lost_count() > 0) {
      if (auto lost = sb.find_lost_from(sb.snd_una())) sb.note_transmit(*lost);
    }
    // Brute-force recount.
    uint64_t sacked = 0;
    uint64_t lost = 0;
    for (uint64_t s = sb.snd_una(); s < sb.snd_nxt(); ++s) {
      if (sb.seg(s).sacked) ++sacked;
      if (sb.seg(s).lost) ++lost;
    }
    ASSERT_EQ(sb.sacked_count(), sacked) << "step " << step;
    ASSERT_EQ(sb.lost_count(), lost) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoreboardProperty,
                         ::testing::Values(1, 2, 3, 42, 99, 12345));

}  // namespace
}  // namespace ccas
