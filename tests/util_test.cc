// Tests for RNG, RunningStats/percentiles, least squares, CSV writer and
// the windowed min/max filter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/csv.h"
#include "src/util/least_squares.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/windowed_filter.h"

namespace ccas {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  // All residues reachable.
  bool seen[7] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.next_below(7)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, MeanIsCentered) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.next_double());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(3);
  Rng child = parent.fork();
  // Child stream differs from the parent continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ------------------------------------------------------- RunningStats ----

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_range(-3.0, 10.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Percentiles, MedianAndInterpolation) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 0.99), 5.0);
  const Percentiles p({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(p.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.at(1.0), 4.0);
  EXPECT_DOUBLE_EQ(p.median(), 2.5);
}

TEST(Percentiles, EmptyThrows) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
}

// ------------------------------------------------------ least squares ----

TEST(LeastSquares, ThroughOriginExactRecovery) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y;
  for (const double v : x) y.push_back(3.25 * v);
  EXPECT_NEAR(fit_through_origin(x, y), 3.25, 1e-12);
}

TEST(LeastSquares, ThroughOriginMinimizesError) {
  // Perturbed data: the estimator is sum(xy)/sum(x^2).
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{2.1, 3.9, 6.2};
  const double c = fit_through_origin(x, y);
  const double expected = (1 * 2.1 + 2 * 3.9 + 3 * 6.2) / (1.0 + 4.0 + 9.0);
  EXPECT_NEAR(c, expected, 1e-12);
}

TEST(LeastSquares, ThroughOriginErrors) {
  EXPECT_THROW((void)fit_through_origin({}, {}), std::invalid_argument);
  EXPECT_THROW((void)fit_through_origin(std::vector<double>{1.0}, std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_through_origin(std::vector<double>{0.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(LeastSquares, LinearExactRecovery) {
  std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  std::vector<double> y;
  for (const double v : x) y.push_back(2.0 - 0.5 * v);
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
  EXPECT_NEAR(fit.slope, -0.5, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LeastSquares, LinearDegenerate) {
  EXPECT_THROW((void)fit_linear(std::vector<double>{1.0, 1.0}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- CSV ----

TEST(Csv, WritesRowsAndEscapes) {
  const std::string path = ::testing::TempDir() + "/ccas_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.row({"1", "plain"});
    w.start_row().col(2.5, 3).col("has,comma").done();
    w.start_row().col(static_cast<int64_t>(7)).col("say \"hi\"").done();
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,plain\n2.5,\"has,comma\"\n7,\"say \"\"hi\"\"\"\n");
  std::remove(path.c_str());
}

TEST(Csv, RejectsWrongColumnCount) {
  const std::string path = ::testing::TempDir() + "/ccas_csv_test2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), std::invalid_argument);
  std::remove(path.c_str());
}

// ----------------------------------------------------- windowed filter ----

TEST(WindowedFilter, TracksMaxWithinWindow) {
  WindowedMaxFilter<uint64_t, uint64_t> f(10);
  f.update(100, 1);
  EXPECT_EQ(f.best(), 100u);
  f.update(50, 2);
  EXPECT_EQ(f.best(), 100u);  // lower sample does not displace the max
  f.update(200, 3);
  EXPECT_EQ(f.best(), 200u);  // higher sample wins immediately
}

TEST(WindowedFilter, ExpiresOldMax) {
  WindowedMaxFilter<uint64_t, uint64_t> f(10);
  f.update(1000, 0);
  for (uint64_t t = 1; t <= 25; ++t) f.update(10, t);
  // The 1000 sample is far outside the window now.
  EXPECT_EQ(f.best(), 10u);
}

TEST(WindowedFilter, MinVariant) {
  WindowedMinFilter<int64_t, int64_t> f(100);
  f.update(50, 0);
  f.update(70, 1);
  EXPECT_EQ(f.best(), 50);
  f.update(20, 2);
  EXPECT_EQ(f.best(), 20);
  for (int64_t t = 3; t < 300; ++t) f.update(40, t);
  EXPECT_EQ(f.best(), 40);  // the 20 expired
}

TEST(WindowedFilter, DegradesThroughRunnersUp) {
  WindowedMaxFilter<uint64_t, uint64_t> f(10);
  f.update(100, 0);
  f.update(80, 4);   // second best
  f.update(60, 8);   // third best
  f.update(10, 11);  // 100 is now stale (11 - 0 > 10): promote 80
  EXPECT_EQ(f.best(), 80u);
}

}  // namespace
}  // namespace ccas
