// Tests for the sweep subsystem: canonical spec hashing (every field and
// the code salt must perturb the key), deterministic per-cell seeds, the
// on-disk result cache (round trip, corruption, atomicity), and the
// executor's core guarantee — results are identical at any --jobs level
// and a warm cache serves every cell.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/runner.h"
#include "src/sweep/executor.h"
#include "src/sweep/result_cache.h"
#include "src/sweep/spec_hash.h"
#include "src/sweep/sweep_spec.h"

namespace ccas::sweep {
namespace {

namespace fs = std::filesystem;

// A cheap but non-trivial spec: a few flows over a small link for a short
// simulated time, so every executor test runs in milliseconds.
ExperimentSpec small_spec(const char* cca = "newreno", int flows = 3,
                          uint64_t seed = 7) {
  ExperimentSpec spec;
  spec.scenario = Scenario::edge_scale();
  spec.scenario.net.bottleneck_rate = DataRate::mbps(10);
  spec.scenario.net.buffer_bytes = 100'000;
  spec.scenario.stagger = TimeDelta::seconds_f(0.5);
  spec.scenario.warmup = TimeDelta::seconds(1);
  spec.scenario.measure = TimeDelta::seconds(3);
  spec.groups.push_back(FlowGroup{cca, flows, TimeDelta::millis(20)});
  spec.seed = seed;
  return spec;
}

// Temp directory under the build tree's CWD (never /tmp); removed on exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::current_path() / ("sweep_test_" + tag + "_" +
                                  std::to_string(::testing::UnitTest::GetInstance()
                                                     ->random_seed()) +
                                  "_" + std::to_string(counter_++));
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

void expect_results_equal(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].flow_id, b.flows[i].flow_id);
    EXPECT_EQ(a.flows[i].window, b.flows[i].window);
    EXPECT_EQ(a.flows[i].goodput_bps, b.flows[i].goodput_bps);
    EXPECT_EQ(a.flows[i].segments_sent, b.flows[i].segments_sent);
    EXPECT_EQ(a.flows[i].retransmits, b.flows[i].retransmits);
    EXPECT_EQ(a.flows[i].delivered, b.flows[i].delivered);
    EXPECT_EQ(a.flows[i].congestion_events, b.flows[i].congestion_events);
    EXPECT_EQ(a.flows[i].rto_events, b.flows[i].rto_events);
    EXPECT_EQ(a.flows[i].queue_drops, b.flows[i].queue_drops);
    EXPECT_EQ(a.flows[i].packet_loss_rate, b.flows[i].packet_loss_rate);
    EXPECT_EQ(a.flows[i].cwnd_halving_rate, b.flows[i].cwnd_halving_rate);
    EXPECT_EQ(a.flows[i].mean_rtt, b.flows[i].mean_rtt);
  }
  EXPECT_EQ(a.flow_group, b.flow_group);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].cca, b.groups[i].cca);
    EXPECT_EQ(a.groups[i].count, b.groups[i].count);
    EXPECT_EQ(a.groups[i].rtt, b.groups[i].rtt);
    EXPECT_EQ(a.groups[i].aggregate_goodput_bps, b.groups[i].aggregate_goodput_bps);
    EXPECT_EQ(a.groups[i].throughput_share, b.groups[i].throughput_share);
    EXPECT_EQ(a.groups[i].jfi, b.groups[i].jfi);
  }
  EXPECT_EQ(a.queue.enqueued_packets, b.queue.enqueued_packets);
  EXPECT_EQ(a.queue.enqueued_bytes, b.queue.enqueued_bytes);
  EXPECT_EQ(a.queue.dequeued_packets, b.queue.dequeued_packets);
  EXPECT_EQ(a.queue.dropped_packets, b.queue.dropped_packets);
  EXPECT_EQ(a.queue.dropped_bytes, b.queue.dropped_bytes);
  EXPECT_EQ(a.queue.max_queued_bytes, b.queue.max_queued_bytes);
  EXPECT_EQ(a.drop_times, b.drop_times);
  EXPECT_EQ(a.aggregate_goodput_bps, b.aggregate_goodput_bps);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.measured_for, b.measured_for);
  EXPECT_EQ(a.converged_early, b.converged_early);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

// ---------------------------------------------------------------------------
// Spec hashing.
// ---------------------------------------------------------------------------

TEST(SpecHash, StableForEqualSpecs) {
  EXPECT_EQ(spec_cache_key(small_spec()), spec_cache_key(small_spec()));
  EXPECT_EQ(canonical_spec_bytes(small_spec()), canonical_spec_bytes(small_spec()));
}

TEST(SpecHash, EveryFieldPerturbsTheKey) {
  const uint64_t base = spec_cache_key(small_spec());
  std::vector<ExperimentSpec> variants;

  auto vary = [&](auto&& mutate) {
    ExperimentSpec s = small_spec();
    mutate(s);
    variants.push_back(std::move(s));
  };

  vary([](ExperimentSpec& s) { s.seed = 8; });
  vary([](ExperimentSpec& s) { s.scenario.setting = Setting::kCoreScale; });
  vary([](ExperimentSpec& s) { s.scenario.net.bottleneck_rate = DataRate::mbps(11); });
  vary([](ExperimentSpec& s) { s.scenario.net.buffer_bytes += 1; });
  vary([](ExperimentSpec& s) { s.scenario.net.num_pairs += 1; });
  vary([](ExperimentSpec& s) { s.scenario.net.edge_rate = DataRate::mbps(123); });
  vary([](ExperimentSpec& s) { s.scenario.net.edge_buffer_bytes += 1; });
  vary([](ExperimentSpec& s) { s.scenario.net.jitter += TimeDelta::micros(1); });
  vary([](ExperimentSpec& s) { s.scenario.net.jitter_seed += 1; });
  vary([](ExperimentSpec& s) { s.scenario.stagger += TimeDelta::millis(1); });
  vary([](ExperimentSpec& s) { s.scenario.warmup += TimeDelta::millis(1); });
  vary([](ExperimentSpec& s) { s.scenario.measure += TimeDelta::millis(1); });
  vary([](ExperimentSpec& s) { s.groups[0].cca = "cubic"; });
  vary([](ExperimentSpec& s) { s.groups[0].count += 1; });
  vary([](ExperimentSpec& s) { s.groups[0].rtt += TimeDelta::millis(1); });
  vary([](ExperimentSpec& s) {
    s.groups.push_back(FlowGroup{"cubic", 1, TimeDelta::millis(30)});
  });
  vary([](ExperimentSpec& s) { s.tcp.initial_cwnd += 1; });
  vary([](ExperimentSpec& s) { s.tcp.max_window += 1; });
  vary([](ExperimentSpec& s) { s.tcp.dup_thresh += 1; });
  vary([](ExperimentSpec& s) { s.tcp.sack_enabled = !s.tcp.sack_enabled; });
  vary([](ExperimentSpec& s) { s.tcp.data_segments += 1; });
  vary([](ExperimentSpec& s) { s.tcp.rtt.min_rto += TimeDelta::millis(1); });
  vary([](ExperimentSpec& s) { s.tcp.rtt.max_rto += TimeDelta::millis(1); });
  vary([](ExperimentSpec& s) { s.tcp.rtt.initial_rto += TimeDelta::millis(1); });
  vary([](ExperimentSpec& s) { s.receiver.delayed_ack = !s.receiver.delayed_ack; });
  vary([](ExperimentSpec& s) { s.receiver.delack_segment_threshold += 1; });
  vary([](ExperimentSpec& s) { s.receiver.delack_timeout += TimeDelta::millis(1); });
  vary([](ExperimentSpec& s) { s.receiver.gro_enabled = !s.receiver.gro_enabled; });
  vary([](ExperimentSpec& s) { s.receiver.gro_flush_timeout += TimeDelta::micros(1); });
  vary([](ExperimentSpec& s) { s.receiver.gro_max_segments += 1; });
  vary([](ExperimentSpec& s) { s.convergence_window = TimeDelta::seconds(5); });
  vary([](ExperimentSpec& s) { s.convergence_poll += TimeDelta::millis(1); });
  vary([](ExperimentSpec& s) { s.convergence_tolerance += 0.001; });
  vary([](ExperimentSpec& s) { s.record_drop_log = !s.record_drop_log; });
  vary([](ExperimentSpec& s) { s.trace_interval = TimeDelta::seconds(1); });
  vary([](ExperimentSpec& s) { s.trace_flows.push_back(0); });

  std::set<uint64_t> keys{base};
  for (size_t i = 0; i < variants.size(); ++i) {
    const uint64_t key = spec_cache_key(variants[i]);
    EXPECT_NE(key, base) << "variant " << i << " did not perturb the key";
    keys.insert(key);
  }
  // All variants must also be pairwise distinct.
  EXPECT_EQ(keys.size(), variants.size() + 1);
}

TEST(SpecHash, SaltPerturbsTheKey) {
  const ExperimentSpec spec = small_spec();
  EXPECT_NE(spec_cache_key(spec, kSweepCodeSalt), spec_cache_key(spec, "ccas-sim-v2"));
}

TEST(SpecHash, HexKeyIs16Chars) {
  const std::string hex = cache_key_hex(spec_cache_key(small_spec()));
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Seed derivation.
// ---------------------------------------------------------------------------

TEST(CellSeed, DeterministicAndDistinct) {
  EXPECT_EQ(derive_cell_seed(1, "a"), derive_cell_seed(1, "a"));
  EXPECT_NE(derive_cell_seed(1, "a"), derive_cell_seed(1, "b"));
  EXPECT_NE(derive_cell_seed(1, "a"), derive_cell_seed(2, "a"));
  EXPECT_NE(derive_cell_seed(1, "a"), 0u);

  std::set<uint64_t> seeds;
  for (int i = 0; i < 1000; ++i) {
    seeds.insert(derive_cell_seed(42, "cell-" + std::to_string(i)));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(CellSeed, AddCellKeepsSeedDerivedOverwrites) {
  SweepSpec sweep;
  sweep.base_seed = 9;
  sweep.add_cell("pinned", small_spec("newreno", 2, /*seed=*/42));
  sweep.add_cell_derived_seed("derived", small_spec("newreno", 2, /*seed=*/42));
  EXPECT_EQ(sweep.cells[0].spec.seed, 42u);
  EXPECT_EQ(sweep.cells[1].spec.seed, derive_cell_seed(9, "derived"));
}

// ---------------------------------------------------------------------------
// Result cache.
// ---------------------------------------------------------------------------

TEST(ResultCache, RoundTripsAResult) {
  const ExperimentResult result = run_experiment(small_spec());
  const std::string payload = serialize_result(result);
  const auto back = deserialize_result(payload);
  ASSERT_TRUE(back.has_value());
  expect_results_equal(result, *back);
}

TEST(ResultCache, StoreThenLoad) {
  TempDir dir("store_load");
  ResultCache cache(dir.str());
  const ExperimentSpec spec = small_spec();
  const ExperimentResult result = run_experiment(spec);
  const uint64_t key = spec_cache_key(spec);

  EXPECT_FALSE(cache.load(key).has_value());
  ASSERT_TRUE(cache.store(key, result));
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  expect_results_equal(result, *loaded);
  // No stray temp files left behind.
  int files = 0;
  for (const auto& e : fs::directory_iterator(dir.str())) {
    ++files;
    EXPECT_EQ(e.path().extension(), ".ccres");
  }
  EXPECT_EQ(files, 1);
}

TEST(ResultCache, RejectsWrongKeyEntry) {
  TempDir dir("wrong_key");
  ResultCache cache(dir.str());
  const ExperimentResult result = run_experiment(small_spec());
  ASSERT_TRUE(cache.store(1, result));
  // Copy the valid entry to a different key's path: key sanity check fails.
  fs::copy_file(cache.entry_path(1), cache.entry_path(2));
  EXPECT_TRUE(cache.load(1).has_value());
  EXPECT_FALSE(cache.load(2).has_value());
}

TEST(ResultCache, DetectsTruncationAndBitFlips) {
  TempDir dir("corrupt");
  ResultCache cache(dir.str());
  const ExperimentResult result = run_experiment(small_spec());
  const uint64_t key = 99;
  ASSERT_TRUE(cache.store(key, result));
  const std::string path = cache.entry_path(key);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 64u);

  // Truncation.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(cache.load(key).has_value());

  // A single flipped payload byte (checksum catches it).
  {
    std::string flipped = bytes;
    flipped[flipped.size() / 2] = static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  EXPECT_FALSE(cache.load(key).has_value());

  // Garbage appended after a valid entry (trailing-bytes check).
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.write("xx", 2);
  }
  EXPECT_FALSE(cache.load(key).has_value());

  // Restoring the original bytes loads again.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_TRUE(cache.load(key).has_value());
}

TEST(ResultCache, RejectsGarbageFile) {
  TempDir dir("garbage");
  ResultCache cache(dir.str());
  {
    std::ofstream out(cache.entry_path(5), std::ios::binary);
    out << "this is not a cache entry";
  }
  EXPECT_FALSE(cache.load(5).has_value());
}

// ---------------------------------------------------------------------------
// Executor.
// ---------------------------------------------------------------------------

SweepSpec small_sweep() {
  SweepSpec sweep;
  sweep.name = "sweep_test";
  sweep.add_cell("newreno/a", small_spec("newreno", 2, 7));
  sweep.add_cell("newreno/b", small_spec("newreno", 3, 8));
  sweep.add_cell("cubic/a", small_spec("cubic", 2, 9));
  sweep.add_cell("cubic/b", small_spec("cubic", 3, 10));
  sweep.add_cell("bbr/a", small_spec("bbr", 2, 11));
  sweep.add_cell("bbr/b", small_spec("bbr", 3, 12));
  return sweep;
}

SweepOptions quiet_options() {
  SweepOptions opts;
  opts.progress = false;
  return opts;
}

TEST(SweepExecutor, ResultsIdenticalAtAnyJobsLevel) {
  const SweepSpec sweep = small_sweep();

  SweepOptions serial = quiet_options();
  serial.jobs = 1;
  SweepExecutor ex1(serial);
  const auto serial_outcomes = ex1.run(sweep);

  SweepOptions wide = quiet_options();
  wide.jobs = 8;
  SweepExecutor ex8(wide);
  const auto wide_outcomes = ex8.run(sweep);

  ASSERT_EQ(serial_outcomes.size(), sweep.cells.size());
  ASSERT_EQ(wide_outcomes.size(), sweep.cells.size());
  for (size_t i = 0; i < sweep.cells.size(); ++i) {
    EXPECT_EQ(serial_outcomes[i].name, sweep.cells[i].name);
    EXPECT_EQ(wide_outcomes[i].name, sweep.cells[i].name);
    EXPECT_EQ(serial_outcomes[i].cache_key, wide_outcomes[i].cache_key);
    expect_results_equal(serial_outcomes[i].result, wide_outcomes[i].result);
  }
  EXPECT_EQ(ex1.summary().jobs, 1);
  EXPECT_EQ(ex1.summary().total_cells, static_cast<int>(sweep.cells.size()));
  EXPECT_EQ(ex1.summary().sim_events, ex8.summary().sim_events);
}

TEST(SweepExecutor, SecondRunFullyCacheServed) {
  TempDir dir("warm");
  const SweepSpec sweep = small_sweep();

  SweepOptions opts = quiet_options();
  opts.jobs = 4;
  opts.cache_dir = dir.str();

  SweepExecutor cold(opts);
  const auto cold_outcomes = cold.run(sweep);
  EXPECT_EQ(cold.summary().from_cache, 0);

  SweepExecutor warm(opts);
  const auto warm_outcomes = warm.run(sweep);
  EXPECT_EQ(warm.summary().from_cache, static_cast<int>(sweep.cells.size()));
  for (size_t i = 0; i < sweep.cells.size(); ++i) {
    EXPECT_TRUE(warm_outcomes[i].from_cache);
    expect_results_equal(cold_outcomes[i].result, warm_outcomes[i].result);
  }
}

TEST(SweepExecutor, NoCacheFlagBypassesTheCache) {
  TempDir dir("nocache");
  const SweepSpec sweep = small_sweep();

  SweepOptions opts = quiet_options();
  opts.cache_dir = dir.str();
  SweepExecutor cold(opts);
  (void)cold.run(sweep);

  opts.use_cache = false;
  SweepExecutor bypass(opts);
  const auto outcomes = bypass.run(sweep);
  EXPECT_EQ(bypass.summary().from_cache, 0);
  for (const auto& out : outcomes) EXPECT_FALSE(out.from_cache);
}

TEST(SweepExecutor, CorruptEntryIsRecomputed) {
  TempDir dir("recompute");
  const SweepSpec sweep = small_sweep();

  SweepOptions opts = quiet_options();
  opts.cache_dir = dir.str();
  SweepExecutor cold(opts);
  const auto cold_outcomes = cold.run(sweep);

  // Vandalize one entry; the warm run must recompute exactly that cell.
  ResultCache cache(dir.str());
  {
    std::ofstream out(cache.entry_path(cold_outcomes[2].cache_key),
                      std::ios::binary | std::ios::trunc);
    out << "corrupt";
  }
  SweepExecutor warm(opts);
  const auto warm_outcomes = warm.run(sweep);
  EXPECT_EQ(warm.summary().from_cache, static_cast<int>(sweep.cells.size()) - 1);
  EXPECT_FALSE(warm_outcomes[2].from_cache);
  expect_results_equal(cold_outcomes[2].result, warm_outcomes[2].result);
  // And the recomputed entry is re-stored intact.
  EXPECT_TRUE(cache.load(cold_outcomes[2].cache_key).has_value());
}

TEST(SweepExecutor, TracedCellsBypassTheCache) {
  TempDir dir("traced");
  SweepSpec sweep;
  ExperimentSpec spec = small_spec();
  spec.trace_interval = TimeDelta::seconds(1);
  sweep.add_cell("traced", spec);

  SweepOptions opts = quiet_options();
  opts.cache_dir = dir.str();
  SweepExecutor first(opts);
  const auto a = first.run(sweep);
  EXPECT_FALSE(a[0].result.trace.empty());

  SweepExecutor second(opts);
  const auto b = second.run(sweep);
  EXPECT_FALSE(b[0].from_cache);
  EXPECT_FALSE(b[0].result.trace.empty());
}

TEST(SweepExecutor, InvalidSpecThrowsUnderFailFast) {
  SweepSpec sweep;
  sweep.add_cell("bad", small_spec("no-such-cca", 1, 1));
  sweep.add_cell("good", small_spec("newreno", 1, 2));
  SweepOptions opts = quiet_options();
  opts.fail_fast = true;
  SweepExecutor executor(opts);
  EXPECT_THROW((void)executor.run(sweep), std::exception);
}

TEST(SweepExecutor, InvalidSpecIsAnExplicitHoleByDefault) {
  SweepSpec sweep;
  sweep.add_cell("bad", small_spec("no-such-cca", 1, 1));
  sweep.add_cell("good", small_spec("newreno", 1, 2));
  SweepExecutor executor(quiet_options());
  const auto outcomes = executor.run(sweep);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].status, CellStatus::kFailed);
  ASSERT_TRUE(outcomes[0].failure.has_value());
  EXPECT_EQ(outcomes[0].failure->cls, FailureClass::kException);
  EXPECT_EQ(outcomes[1].status, CellStatus::kOk);
  EXPECT_EQ(executor.summary().failed, 1);
  ASSERT_EQ(executor.failures().size(), 1u);
  EXPECT_EQ(executor.failures()[0].cell, "bad");
}

TEST(SweepExecutor, SaltChangeInvalidatesCache) {
  TempDir dir("salt");
  const SweepSpec sweep = small_sweep();

  SweepOptions opts = quiet_options();
  opts.cache_dir = dir.str();
  SweepExecutor cold(opts);
  (void)cold.run(sweep);

  opts.cache_salt = "ccas-sim-v999";
  SweepExecutor other_salt(opts);
  (void)other_salt.run(sweep);
  EXPECT_EQ(other_salt.summary().from_cache, 0);
}

}  // namespace
}  // namespace ccas::sweep
