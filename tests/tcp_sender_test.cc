// End-to-end sender tests over a controllable lossy channel: slow start,
// SACK fast retransmit, NewReno (non-SACK) recovery, RTO + backoff, pipe
// accounting, and congestion-event counting (the paper's "CWND halvings").
#include "src/tcp/tcp_sender.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>

#include "src/cca/new_reno.h"
#include "src/net/delay_line.h"
#include "src/net/topology.h"
#include "src/tcp/tcp_receiver.h"

namespace ccas {
namespace {

// A sink that drops data segments whose (seq, tx_count) the test selects.
class LossyChannel : public PacketSink {
 public:
  explicit LossyChannel(PacketSink* dest) : dest_(dest) {}

  // Drop the next transmission of `seq` (one-shot).
  void drop_once(uint64_t seq) { drop_once_.insert(seq); }
  // Drop everything while true.
  void set_blackhole(bool on) { blackhole_ = on; }

  void accept(Packet&& pkt) override {
    ++seen_;
    if (blackhole_) {
      ++dropped_;
      return;
    }
    if (pkt.type == PacketType::kData) {
      auto it = drop_once_.find(pkt.seq);
      if (it != drop_once_.end()) {
        drop_once_.erase(it);
        ++dropped_;
        return;
      }
    }
    dest_->accept(std::move(pkt));
  }

  uint64_t seen() const { return seen_; }
  uint64_t dropped() const { return dropped_; }

 private:
  PacketSink* dest_;
  std::set<uint64_t> drop_once_;
  bool blackhole_ = false;
  uint64_t seen_ = 0;
  uint64_t dropped_ = 0;
};

// DelayLine requires a non-null destination; a small indirection lets the
// fixture wire receiver->sender despite construction order.
class Redirector : public PacketSink {
 public:
  void accept(Packet&& pkt) override { target_->accept(std::move(pkt)); }
  void set_target(PacketSink* t) { target_ = t; }

 private:
  PacketSink* target_ = nullptr;
};

// sender --LossyChannel--> DelayLine(5 ms) --> receiver
// receiver --DelayLine(5 ms)--> sender            (10 ms base RTT)
//
// The path has no bottleneck link, so the default rig caps the send window
// (a receive-window stand-in); slow start would otherwise grow unboundedly.
struct Rig {
  static TcpSenderConfig rig_config(TcpSenderConfig cfg) {
    if (cfg.max_window == TcpSenderConfig{}.max_window) cfg.max_window = 256;
    return cfg;
  }

  explicit Rig(TcpSenderConfig cfg = {}, TcpReceiverConfig rcfg = {},
               std::unique_ptr<CongestionController> cca = nullptr)
      : rev_delay(sim, TimeDelta::millis(5), &to_sender),
        rcv(sim, 0, &rev_delay, rcfg),
        fwd_delay(sim, TimeDelta::millis(5), &rcv),
        channel(&fwd_delay),
        snd(sim, 0, cca ? std::move(cca) : std::make_unique<NewReno>(), &channel,
            rig_config(cfg)) {
    to_sender.set_target(&snd);
  }

  void run_ms(int64_t ms) { sim.run_until(sim.now() + TimeDelta::millis(ms)); }

  Simulator sim;
  Redirector to_sender;
  DelayLine rev_delay;
  TcpReceiver rcv;
  DelayLine fwd_delay;
  LossyChannel channel;
  TcpSender snd;
};

TEST(TcpSender, SendsInitialWindowOnStart) {
  Rig rig;
  rig.snd.start();
  EXPECT_EQ(rig.snd.stats().segments_sent, 10u);  // IW10
  EXPECT_EQ(rig.snd.inflight(), 10u);
  EXPECT_EQ(rig.snd.snd_nxt(), 10u);
}

TEST(TcpSender, SlowStartDoublesPerRtt) {
  Rig rig;
  rig.snd.start();
  rig.run_ms(11);  // one RTT + a little
  // Each ACK for 2 segments grows cwnd by 2 and releases 4: ~doubling.
  EXPECT_GE(rig.snd.cca().cwnd(), 18u);
  const uint64_t cwnd_after_1 = rig.snd.cca().cwnd();
  rig.run_ms(10);
  EXPECT_GE(rig.snd.cca().cwnd(), 2 * cwnd_after_1 - 4);
}

TEST(TcpSender, DeliveredMatchesReceiverProgress) {
  Rig rig;
  rig.snd.start();
  rig.run_ms(100);
  // The sender's view lags the receiver's by at most the data whose ACK
  // is still in flight (bounded by the window cap).
  EXPECT_LE(rig.snd.stats().delivered, rig.rcv.rcv_nxt());
  EXPECT_GE(rig.snd.stats().delivered + 256, rig.rcv.rcv_nxt());
  EXPECT_EQ(rig.snd.stats().rto_events, 0u);
}

TEST(TcpSender, FastRetransmitOnSackLoss) {
  Rig rig;
  rig.snd.start();
  rig.run_ms(25);  // let the window open a bit
  const uint64_t victim = rig.snd.snd_nxt() + 2;
  rig.channel.drop_once(victim);
  rig.run_ms(60);
  EXPECT_EQ(rig.snd.stats().congestion_events, 1u);
  EXPECT_EQ(rig.snd.stats().rto_events, 0u);  // recovered via dupacks/SACK
  EXPECT_GE(rig.snd.stats().retransmits, 1u);
  // The hole was repaired: receiver is contiguous.
  EXPECT_EQ(rig.rcv.out_of_order_ranges(), 0u);
  EXPECT_GT(rig.rcv.rcv_nxt(), victim);
}

TEST(TcpSender, HalvesOncePerLossEventNotPerLoss) {
  Rig rig;
  rig.snd.start();
  rig.run_ms(30);
  // Drop three segments of the same flight: one congestion event.
  const uint64_t base = rig.snd.snd_nxt() + 2;
  rig.channel.drop_once(base);
  rig.channel.drop_once(base + 1);
  rig.channel.drop_once(base + 3);
  rig.run_ms(80);
  EXPECT_EQ(rig.snd.stats().congestion_events, 1u);
  EXPECT_EQ(rig.snd.stats().rto_events, 0u);
  EXPECT_GE(rig.snd.stats().retransmits, 3u);
  EXPECT_EQ(rig.rcv.out_of_order_ranges(), 0u);
}

TEST(TcpSender, SeparatedLossesAreSeparateEvents) {
  Rig rig;
  rig.snd.start();
  rig.run_ms(30);
  rig.channel.drop_once(rig.snd.snd_nxt() + 2);
  rig.run_ms(100);  // fully recover
  EXPECT_EQ(rig.snd.stats().congestion_events, 1u);
  rig.channel.drop_once(rig.snd.snd_nxt() + 2);
  rig.run_ms(100);
  EXPECT_EQ(rig.snd.stats().congestion_events, 2u);
}

TEST(TcpSender, CwndHalvedAtCongestionEvent) {
  Rig rig;
  rig.snd.start();
  rig.run_ms(40);
  rig.channel.drop_once(rig.snd.snd_nxt() + 1);
  // Poll in 1 ms steps so we capture cwnd just before the event fires.
  uint64_t cwnd_before = rig.snd.cca().cwnd();
  for (int i = 0; i < 60 && rig.snd.stats().congestion_events == 0; ++i) {
    cwnd_before = rig.snd.cca().cwnd();
    rig.run_ms(1);
  }
  ASSERT_EQ(rig.snd.stats().congestion_events, 1u);
  const auto& reno = dynamic_cast<const NewReno&>(rig.snd.cca());
  // The decrease anchored at the cwnd in effect at the event; between our
  // last poll and the event cwnd can only have grown, so ssthresh lies in
  // [cwnd_before/2, cwnd_at_event/2] with cwnd_at_event <= 2*cwnd_before.
  EXPECT_GE(reno.ssthresh(), cwnd_before / 2);
  EXPECT_LE(reno.ssthresh(), cwnd_before + 1);
  EXPECT_LT(reno.cwnd(), cwnd_before);
}

TEST(TcpSender, LargeContiguousLossRecoveredBySackWithoutRto) {
  Rig rig;
  rig.snd.start();
  rig.run_ms(30);
  // Wipe out a 30-segment stretch of the flight; segments after it still
  // arrive and generate the SACKs that drive recovery.
  const uint64_t base = rig.snd.snd_nxt() + 2;
  for (uint64_t s = base; s < base + 30; ++s) rig.channel.drop_once(s);
  rig.run_ms(500);
  EXPECT_EQ(rig.snd.stats().rto_events, 0u);
  EXPECT_EQ(rig.snd.stats().congestion_events, 1u);
  EXPECT_GE(rig.snd.stats().retransmits, 30u);
  EXPECT_EQ(rig.rcv.out_of_order_ranges(), 0u);
}

TEST(TcpSender, RtoRecoversFromLongBlackhole) {
  Rig rig;
  rig.snd.start();
  rig.run_ms(30);
  // Long enough that fast retransmissions die too: only the RTO recovers.
  rig.channel.set_blackhole(true);
  rig.run_ms(700);
  rig.channel.set_blackhole(false);
  const uint64_t rcv_before = rig.rcv.rcv_nxt();
  rig.run_ms(2000);
  EXPECT_GE(rig.snd.stats().rto_events, 1u);
  EXPECT_GT(rig.rcv.rcv_nxt(), rcv_before);
  EXPECT_EQ(rig.rcv.out_of_order_ranges(), 0u);
  // Flow is healthy again.
  const uint64_t p = rig.rcv.rcv_nxt();
  rig.run_ms(100);
  EXPECT_GT(rig.rcv.rcv_nxt(), p);
}

TEST(TcpSender, RtoBackoffGrowsUnderPersistentBlackhole) {
  Rig rig;
  rig.snd.start();
  rig.run_ms(30);
  rig.channel.set_blackhole(true);
  rig.run_ms(4000);
  const uint64_t rtos_4s = rig.snd.stats().rto_events;
  EXPECT_GE(rtos_4s, 2u);
  // Exponential backoff: far fewer than 4s / min_rto (20) firings.
  EXPECT_LE(rtos_4s, 6u);
}

TEST(TcpSender, NonSackFastRetransmitViaDupacks) {
  TcpSenderConfig cfg;
  cfg.sack_enabled = false;
  Rig rig(cfg);
  rig.snd.start();
  rig.run_ms(30);
  rig.channel.drop_once(rig.snd.snd_nxt() + 1);
  rig.run_ms(100);
  EXPECT_EQ(rig.snd.stats().congestion_events, 1u);
  EXPECT_EQ(rig.snd.stats().rto_events, 0u);
  EXPECT_EQ(rig.rcv.out_of_order_ranges(), 0u);
  EXPECT_GE(rig.snd.stats().dupacks, 3u);
}

TEST(TcpSender, NonSackNewRenoPartialAckRecovery) {
  TcpSenderConfig cfg;
  cfg.sack_enabled = false;
  Rig rig(cfg);
  rig.snd.start();
  rig.run_ms(40);
  // Two holes in one flight: NewReno repairs them one partial ACK at a
  // time within a single recovery episode.
  const uint64_t base = rig.snd.snd_nxt() + 2;
  rig.channel.drop_once(base);
  rig.channel.drop_once(base + 4);
  rig.run_ms(200);
  EXPECT_EQ(rig.snd.stats().congestion_events, 1u);
  EXPECT_EQ(rig.snd.stats().rto_events, 0u);
  EXPECT_EQ(rig.rcv.out_of_order_ranges(), 0u);
  EXPECT_GT(rig.rcv.rcv_nxt(), base + 4);
}

TEST(TcpSender, PipeNeverExceedsCwnd) {
  Rig rig;
  rig.snd.start();
  for (int i = 0; i < 300; ++i) {
    rig.sim.run_until(rig.sim.now() + TimeDelta::millis(1));
    EXPECT_LE(rig.snd.inflight(), std::max<uint64_t>(rig.snd.cca().cwnd(), 1));
  }
}

TEST(TcpSender, HonorsMaxWindow) {
  TcpSenderConfig cfg;
  cfg.max_window = 16;
  Rig rig(cfg);
  rig.snd.start();
  rig.run_ms(500);
  EXPECT_LE(rig.snd.snd_nxt() - rig.snd.snd_una(), 16u);
  // Still makes steady progress.
  EXPECT_GT(rig.rcv.rcv_nxt(), 100u);
}

TEST(TcpSender, AcceptIgnoresDataPackets) {
  Rig rig;
  rig.snd.start();
  const auto acks_before = rig.snd.stats().acks_received;
  rig.snd.accept(Packet::make_data(0, 0, 99, false));
  EXPECT_EQ(rig.snd.stats().acks_received, acks_before);
}

TEST(TcpSender, ConstructorValidation) {
  Simulator sim;
  Redirector sink;
  EXPECT_THROW(TcpSender(sim, 0, nullptr, &sink), std::invalid_argument);
  EXPECT_THROW(TcpSender(sim, 0, std::make_unique<NewReno>(), nullptr),
               std::invalid_argument);
  TcpSenderConfig bad;
  bad.dup_thresh = 0;
  EXPECT_THROW(TcpSender(sim, 0, std::make_unique<NewReno>(), &sink, bad),
               std::invalid_argument);
}

// Parameterized: recovery works wherever the loss lands in the flight.
class LossPosition : public ::testing::TestWithParam<int> {};

TEST_P(LossPosition, RecoversWithoutRto) {
  Rig rig;
  rig.snd.start();
  rig.run_ms(40);
  rig.channel.drop_once(rig.snd.snd_nxt() + GetParam());
  rig.run_ms(150);
  EXPECT_EQ(rig.snd.stats().rto_events, 0u);
  EXPECT_EQ(rig.snd.stats().congestion_events, 1u);
  EXPECT_EQ(rig.rcv.out_of_order_ranges(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Positions, LossPosition,
                         ::testing::Values(0, 1, 2, 5, 10, 20));

}  // namespace
}  // namespace ccas
