// Tests for the time-series tracing subsystem (TraceLog + the harness
// integration via ExperimentSpec::trace_interval).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/harness/runner.h"
#include "src/stats/trace.h"

namespace ccas {
namespace {

TEST(TraceLog, StoresAndDerivesThroughput) {
  TraceLog log;
  for (int i = 0; i <= 4; ++i) {
    FlowTraceSample s;
    s.at = Time::seconds_f(i);
    s.delivered = static_cast<uint64_t>(i) * 100;  // 100 segments per second
    s.cwnd = 10;
    log.add_flow_sample(3, s);
  }
  ASSERT_TRUE(log.has_flow(3));
  EXPECT_EQ(log.flow(3).size(), 5u);
  const auto thpt = log.flow_throughput_bps(3, 1448);
  ASSERT_EQ(thpt.size(), 4u);
  for (const double t : thpt) EXPECT_NEAR(t, 100.0 * 1448 * 8, 1.0);
  EXPECT_THROW((void)log.flow(9), std::out_of_range);
}

TEST(TraceLog, WritesCsvFiles) {
  TraceLog log;
  FlowTraceSample fs;
  fs.at = Time::seconds_f(1);
  fs.cwnd = 7;
  log.add_flow_sample(0, fs);
  QueueTraceSample qs;
  qs.at = Time::seconds_f(1);
  qs.queued_bytes = 1234;
  log.add_queue_sample(qs);

  const std::string prefix = ::testing::TempDir() + "/ccas_trace_test";
  log.write_csv(prefix);
  std::ifstream flows(prefix + "_flows.csv");
  std::ifstream queue(prefix + "_queue.csv");
  ASSERT_TRUE(flows.good());
  ASSERT_TRUE(queue.good());
  std::string line;
  std::getline(flows, line);
  EXPECT_NE(line.find("cwnd"), std::string::npos);
  std::getline(queue, line);
  std::getline(queue, line);
  EXPECT_NE(line.find("1234"), std::string::npos);
  std::remove((prefix + "_flows.csv").c_str());
  std::remove((prefix + "_queue.csv").c_str());
}

ExperimentSpec traced_spec() {
  ExperimentSpec spec;
  spec.scenario.net.bottleneck_rate = DataRate::mbps(20);
  spec.scenario.net.buffer_bytes = 200'000;
  spec.scenario.stagger = TimeDelta::millis(100);
  spec.scenario.warmup = TimeDelta::seconds(1);
  spec.scenario.measure = TimeDelta::seconds(4);
  spec.groups.push_back(FlowGroup{"newreno", 3, TimeDelta::millis(20)});
  spec.seed = 5;
  spec.trace_interval = TimeDelta::millis(100);
  return spec;
}

TEST(Tracing, HarnessCollectsAllFlowsByDefault) {
  const ExperimentResult r = run_experiment(traced_spec());
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.flows().size(), 3u);
  // ~ (stagger + warmup + measure) / interval samples.
  const auto& s = r.trace.flow(0);
  EXPECT_GT(s.size(), 40u);
  EXPECT_LE(s.size(), 60u);
  // Samples are time-ordered and delivered is monotonic.
  for (size_t i = 1; i < s.size(); ++i) {
    EXPECT_GE(s[i].at, s[i - 1].at);
    EXPECT_GE(s[i].delivered, s[i - 1].delivered);
  }
  // Queue occupancy was sampled and stays within the buffer.
  ASSERT_FALSE(r.trace.queue().empty());
  for (const auto& q : r.trace.queue()) {
    EXPECT_GE(q.queued_bytes, 0);
    EXPECT_LE(q.queued_bytes, 200'000);
  }
}

TEST(Tracing, FlowFilterRestrictsSampling) {
  ExperimentSpec spec = traced_spec();
  spec.trace_flows = {1};
  const ExperimentResult r = run_experiment(spec);
  EXPECT_EQ(r.trace.flows().size(), 1u);
  EXPECT_TRUE(r.trace.has_flow(1));
  EXPECT_FALSE(r.trace.has_flow(0));
}

TEST(Tracing, DisabledByDefault) {
  ExperimentSpec spec = traced_spec();
  spec.trace_interval = TimeDelta::zero();
  const ExperimentResult r = run_experiment(spec);
  EXPECT_TRUE(r.trace.empty());
}

TEST(Tracing, CwndSamplesReflectCcaState) {
  ExperimentSpec spec = traced_spec();
  spec.groups[0].cca = "bbr";
  const ExperimentResult r = run_experiment(spec);
  bool saw_pacing = false;
  for (const auto& s : r.trace.flow(0)) {
    if (s.pacing_bps > 0.0) saw_pacing = true;
    EXPECT_LT(s.cwnd, 1'000'000u);
  }
  EXPECT_TRUE(saw_pacing);  // BBR paces
}

}  // namespace
}  // namespace ccas
