// Tests for the sweep fleet (src/sweep/fleet/): lease lifecycle with an
// injected clock (claim exclusivity, renewal, expiry reclamation through
// the rename-steal, fencing-token rejection of resurrected holders), the
// job store (freeze/join/verify, salt and grid refusal, torn repair),
// multi-writer manifest semantics (duplicate digests, determinism
// violations, reload), concurrent ResultCache writers, the worker's
// claim → compute → commit loop (adoption, re-attempts, quarantine,
// stall timeout), N-worker byte-identity against a serial sweep, and a
// randomized kill/resume property test that must converge to the same
// manifest bytes as a single worker.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/runner.h"
#include "src/sweep/executor.h"
#include "src/sweep/fleet/lease.h"
#include "src/sweep/fleet/store.h"
#include "src/sweep/fleet/worker.h"
#include "src/sweep/manifest.h"
#include "src/sweep/result_cache.h"
#include "src/sweep/spec_hash.h"
#include "src/sweep/wire.h"

namespace ccas::sweep::fleet {
namespace {

namespace fs = std::filesystem;

// A cheap but non-trivial spec (mirrors sweep_supervisor_test.cc).
ExperimentSpec tiny_spec(uint64_t seed, int flows = 2) {
  ExperimentSpec spec;
  spec.scenario = Scenario::edge_scale();
  spec.scenario.net.bottleneck_rate = DataRate::mbps(5);
  spec.scenario.net.buffer_bytes = 50'000;
  spec.scenario.stagger = TimeDelta::seconds_f(0.05);
  spec.scenario.warmup = TimeDelta::seconds_f(0.1);
  spec.scenario.measure = TimeDelta::seconds_f(0.2);
  spec.groups.push_back(FlowGroup{"newreno", flows, TimeDelta::millis(10)});
  spec.seed = seed;
  return spec;
}

SweepSpec tiny_sweep(int cells) {
  SweepSpec sweep;
  sweep.name = "fleet_test";
  for (int i = 0; i < cells; ++i) {
    sweep.add_cell("seed=" + std::to_string(i + 1),
                   tiny_spec(static_cast<uint64_t>(i + 1)));
  }
  return sweep;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::current_path() /
            ("fleet_test_" + tag + "_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + std::to_string(counter_++));
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

FleetOptions quiet_fleet(const std::string& dir, const std::string& id) {
  FleetOptions opts;
  opts.dir = dir;
  opts.worker_id = id;
  opts.progress = false;
  return opts;
}

const std::string kSalt{kSweepCodeSalt};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------------
// Lease lifecycle (injected clock).
// ---------------------------------------------------------------------------

TEST(FleetLease, ClaimIsExclusiveUntilExpiry) {
  TempDir dir("lease_excl");
  uint64_t now = 1'000;
  const ClockMsFn clock = [&now] { return now; };
  LeaseDir a(dir.str(), "a", 100, clock);
  LeaseDir b(dir.str(), "b", 100, clock);

  const auto la = a.claim(42);
  ASSERT_TRUE(la.has_value());
  EXPECT_EQ(la->fence, 1u);
  EXPECT_EQ(la->worker, "a");
  EXPECT_TRUE(a.still_held(*la));
  // A live lease cannot be claimed by anyone else — including its own
  // worker id through a second claim path.
  EXPECT_FALSE(b.claim(42).has_value());
  EXPECT_FALSE(a.claim(42).has_value());

  now += 99;  // not yet expired
  EXPECT_FALSE(b.claim(42).has_value());
  now += 2;  // past expires
  const auto lb = b.claim(42);
  ASSERT_TRUE(lb.has_value());
  EXPECT_EQ(lb->fence, 2u) << "reclaim must inherit the stolen fence + 1";
  EXPECT_EQ(lb->worker, "b");
}

TEST(FleetLease, RenewalExtendsAndFencingRejectsResurrectedHolder) {
  TempDir dir("lease_fence");
  uint64_t now = 0;
  const ClockMsFn clock = [&now] { return now; };
  LeaseDir a(dir.str(), "a", 100, clock);
  LeaseDir b(dir.str(), "b", 100, clock);

  const auto la = a.claim(7);
  ASSERT_TRUE(la.has_value());
  now += 90;
  ASSERT_TRUE(a.renew(*la));  // pushes expiry to 190
  now += 90;
  EXPECT_FALSE(b.claim(7).has_value()) << "renewal must extend the lease";

  now += 50;  // 230 > 190: expired mid-compute
  const auto lb = b.claim(7);
  ASSERT_TRUE(lb.has_value());
  // The resurrected original holder must see its handle rejected at
  // every gate: renew, still_held, and release (which must not unlink
  // the new holder's lease).
  EXPECT_FALSE(a.renew(*la));
  EXPECT_FALSE(a.still_held(*la));
  a.release(*la);
  EXPECT_TRUE(b.still_held(*lb));
}

TEST(FleetLease, ReleaseFreesTheNameAndFenceRestartsSafely) {
  TempDir dir("lease_release");
  uint64_t now = 0;
  const ClockMsFn clock = [&now] { return now; };
  LeaseDir a(dir.str(), "a", 100, clock);

  const auto first = a.claim(9);
  ASSERT_TRUE(first.has_value());
  a.release(*first);
  EXPECT_FALSE(a.still_held(*first));
  const auto second = a.claim(9);
  ASSERT_TRUE(second.has_value());
  // A fresh O_EXCL claim restarts at fence 1; exclusion rests on the
  // (worker, fence) pair, which a worker never reuses while a prior
  // handle to the same cell is live.
  EXPECT_EQ(second->fence, 1u);
}

TEST(FleetLease, TornLeaseBodyIsImmediatelyReclaimable) {
  TempDir dir("lease_torn");
  uint64_t now = 0;
  const ClockMsFn clock = [&now] { return now; };
  LeaseDir a(dir.str(), "a", 1'000'000, clock);
  // The creator died between O_EXCL create and its single write: an
  // empty body. The TTL must not apply — the writer window is two
  // syscalls wide, not a compute.
  std::ofstream(a.lease_path(5)).close();
  const auto lease = a.claim(5);
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->fence, 1u);
}

TEST(FleetLease, RejectsZeroTtl) {
  TempDir dir("lease_ttl");
  EXPECT_THROW(LeaseDir(dir.str(), "a", 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Randomized kill/resume property test: workers that die mid-cell, get
// reclaimed, and resurrect with stale handles must converge to exactly
// the manifest a single flawless worker would write.
// ---------------------------------------------------------------------------

TEST(FleetLeaseProperty, RandomKillResumeConvergesToSerialManifestBytes) {
  constexpr int kCells = 6;
  constexpr int kWorkers = 3;
  constexpr uint64_t kTtl = 100;
  std::vector<uint64_t> hashes;
  for (int i = 0; i < kCells; ++i) {
    hashes.push_back(0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1));
  }
  const auto digest_of = [](uint64_t hash) { return hash ^ 0xabcdef123456ULL; };

  // The reference: one flawless worker journals every cell once.
  TempDir ref_dir("prop_ref");
  std::string reference;
  {
    SweepManifest ref(ref_dir.str(), kSalt);
    for (const uint64_t h : hashes) ref.record_ok(h, 1, digest_of(h), "ref", 1);
    reference = ref.canonical_text();
  }

  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 25; ++round) {
    TempDir dir("prop_" + std::to_string(round));
    uint64_t now = 1;
    const ClockMsFn clock = [&now] { return now; };
    SweepManifest manifest(dir.str(), kSalt);
    std::vector<std::unique_ptr<LeaseDir>> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.push_back(std::make_unique<LeaseDir>(
          dir.str() + "/leases", "w" + std::to_string(w), kTtl, clock));
    }
    // Handles of workers "killed" mid-cell: their leases silently expire;
    // on resurrection they retry the commit gate and must be rejected
    // whenever the cell was reclaimed in the meantime.
    std::vector<std::pair<int, Lease>> zombies;
    int stale_rejections = 0;

    const auto covered = [&](uint64_t h) {
      const auto rec = manifest.lookup(h);
      return rec.has_value() && rec->ok;
    };
    const auto all_covered = [&] {
      for (const uint64_t h : hashes) {
        if (!covered(h)) return false;
      }
      return true;
    };

    for (int step = 0; step < 10'000 && !all_covered(); ++step) {
      const int action = static_cast<int>(rng() % 10);
      if (action < 6) {
        // A worker claims the first uncovered cell and either commits or
        // dies mid-cell.
        const int w = static_cast<int>(rng() % kWorkers);
        for (const uint64_t h : hashes) {
          if (covered(h)) continue;
          auto lease = workers[static_cast<size_t>(w)]->claim(h);
          if (!lease) continue;
          if (rng() % 3 == 0) {
            zombies.emplace_back(w, *lease);  // kill -9 mid-compute
          } else {
            manifest.record_ok(h, 1, digest_of(h), "w" + std::to_string(w),
                               lease->fence);
            workers[static_cast<size_t>(w)]->release(*lease);
          }
          break;
        }
      } else if (action < 8 && !zombies.empty()) {
        // A zombie resurrects and runs the commit gate.
        const size_t z = rng() % zombies.size();
        auto [w, lease] = zombies[z];
        zombies.erase(zombies.begin() + static_cast<long>(z));
        if (workers[static_cast<size_t>(w)]->still_held(lease)) {
          // Not reclaimed yet: the commit is legitimate (and the digest
          // identical, results being deterministic).
          manifest.record_ok(lease.spec_hash, 1, digest_of(lease.spec_hash),
                             "w" + std::to_string(w), lease.fence);
          workers[static_cast<size_t>(w)]->release(lease);
        } else {
          // Reclaimed: every gate must reject the stale handle.
          EXPECT_FALSE(workers[static_cast<size_t>(w)]->renew(lease));
          ++stale_rejections;
        }
      } else {
        now += rng() % (2 * kTtl);  // let leases expire
      }
    }

    ASSERT_TRUE(all_covered()) << "round " << round << " did not converge";
    manifest.reload();
    EXPECT_EQ(manifest.canonical_text(), reference) << "round " << round;
    for (const uint64_t h : hashes) {
      const auto rec = manifest.lookup(h);
      ASSERT_TRUE(rec.has_value());
      EXPECT_TRUE(rec->ok) << "no determinism violation may appear when every "
                              "commit carries the same digest";
    }
    (void)stale_rejections;
  }
}

// ---------------------------------------------------------------------------
// Job store: freeze, join, verify, repair.
// ---------------------------------------------------------------------------

TEST(FleetStore, FreezesGridOnceAndJoinersVerify) {
  TempDir dir("store_freeze");
  const SweepSpec sweep = tiny_sweep(3);
  FleetStore first(dir.str(), sweep, kSalt);
  ASSERT_EQ(first.grid().size(), 3u);
  EXPECT_EQ(first.grid()[0].name, "seed=1");
  EXPECT_EQ(first.grid()[0].spec_hash, spec_cache_key(sweep.cells[0].spec, kSalt));

  // A second worker with the same grid joins cleanly and sees the same
  // frozen file (uncovered == whole grid: nothing journaled yet).
  FleetStore second(dir.str(), sweep, kSalt);
  EXPECT_EQ(second.grid().size(), 3u);
  EXPECT_EQ(second.uncovered().size(), 3u);
}

TEST(FleetStore, RefusesMismatchedGridAndSalt) {
  TempDir dir("store_mismatch");
  FleetStore first(dir.str(), tiny_sweep(3), kSalt);
  // Different cell count.
  EXPECT_THROW(FleetStore(dir.str(), tiny_sweep(4), kSalt),
               std::invalid_argument);
  // Same count, different spec (hence hash).
  SweepSpec other = tiny_sweep(2);
  other.add_cell("seed=99", tiny_spec(99));
  EXPECT_THROW(FleetStore(dir.str(), other, kSalt), std::invalid_argument);
  // Different salt: refused before any grid comparison.
  EXPECT_THROW(FleetStore(dir.str(), tiny_sweep(3), "other-salt"),
               std::invalid_argument);
}

TEST(FleetStore, RepairsTornJobSpecAndReportOnlyRefuses) {
  TempDir dir("store_torn");
  fs::create_directories(dir.str());
  {
    // A torn freeze: header and one cell line, no `end` trailer.
    std::ofstream out(dir.str() + "/job.spec");
    out << "ccas-fleet-job v1 salt=" << kSalt << "\n"
        << "cell 0123456789abcdef seed=1\n";
  }
  // Report-only has no grid to re-freeze from.
  EXPECT_THROW(FleetStore(dir.str(), kSalt), std::runtime_error);
  // A worker repairs it from its own grid.
  const SweepSpec sweep = tiny_sweep(2);
  FleetStore repaired(dir.str(), sweep, kSalt);
  EXPECT_EQ(repaired.grid().size(), 2u);
  // And the repaired file now serves report-only joins.
  FleetStore report(dir.str(), kSalt);
  EXPECT_EQ(report.grid().size(), 2u);
}

TEST(FleetStore, ReportOnlyRequiresAnExistingStore) {
  TempDir dir("store_absent");
  EXPECT_THROW(FleetStore(dir.str(), kSalt), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Multi-writer manifest: duplicate digests, determinism violations.
// ---------------------------------------------------------------------------

TEST(FleetManifest, AgreeingDuplicateRecordsCoexist) {
  TempDir dir("mf_dup_ok");
  SweepManifest m(dir.str(), kSalt);
  m.record_ok(11, 1, 0xaaa, "w1", 1);
  m.record_ok(11, 2, 0xaaa, "w2", 3);  // same digest: benign double-commit
  const auto rec = m.lookup(11);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->ok);
  EXPECT_EQ(rec->digest, 0xaaau);
  // Replay from the journal agrees.
  m.reload();
  EXPECT_TRUE(m.lookup(11)->ok);
}

TEST(FleetManifest, DivergentDigestsBecomeStickyDeterminismViolation) {
  TempDir dir("mf_dup_bad");
  {
    SweepManifest m(dir.str(), kSalt);
    m.record_ok(11, 1, 0xaaa, "w1", 1);
    m.record_ok(11, 1, 0xbbb, "w2", 2);  // divergent: the broken contract
    const auto rec = m.lookup(11);
    ASSERT_TRUE(rec.has_value());
    EXPECT_FALSE(rec->ok);
    EXPECT_EQ(rec->cls, FailureClass::kDeterminism);
    EXPECT_NE(rec->what.find("digest mismatch"), std::string::npos);
    // Sticky: a third agreeing commit cannot settle which side was right.
    m.record_ok(11, 1, 0xaaa, "w3", 3);
    EXPECT_EQ(m.lookup(11)->cls, FailureClass::kDeterminism);
  }
  // A fresh replay of the journal reconstructs the violation — the
  // structured failure, not a crash.
  SweepManifest replay(dir.str(), kSalt);
  const auto rec = replay.lookup(11);
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(rec->ok);
  EXPECT_EQ(rec->cls, FailureClass::kDeterminism);
  EXPECT_NE(replay.canonical_text().find("determinism-violation"),
            std::string::npos);
}

TEST(FleetManifest, ReloadFoldsInRecordsFromOtherWriters) {
  TempDir dir("mf_reload");
  SweepManifest a(dir.str(), kSalt);
  SweepManifest b(dir.str(), kSalt);  // a second process, same journal
  b.record_ok(21, 1, 0x123, "b", 1);
  EXPECT_FALSE(a.lookup(21).has_value());
  a.reload();
  const auto rec = a.lookup(21);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->ok);
  EXPECT_EQ(rec->digest, 0x123u);
  EXPECT_EQ(rec->worker, "b");
  // Both instances wrote a header race-free (or tolerated the duplicate).
  EXPECT_EQ(a.canonical_text(), b.canonical_text());
}

TEST(FleetManifest, DeterminismViolationIsDeterministicNotTransient) {
  EXPECT_FALSE(failure_is_transient(FailureClass::kDeterminism));
  EXPECT_FALSE(failure_is_budget(FailureClass::kDeterminism));
  const auto back = failure_class_from_name("determinism-violation");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, FailureClass::kDeterminism);
}

// ---------------------------------------------------------------------------
// ResultCache under concurrent writers.
// ---------------------------------------------------------------------------

TEST(FleetResultCache, TwoWriterRaceLeavesAVerifiableEntry) {
  TempDir dir("cache_race");
  const ExperimentResult result = run_experiment(tiny_spec(3), nullptr);
  const std::string expected = serialize_result(result);
  constexpr uint64_t kKey = 0xfeedbeef;

  // Two caches on one directory model two worker processes; one of them
  // also suffers injected torn writes, which verify-after-rename must
  // absorb without ever publishing a torn entry.
  ResultCache a(dir.str());
  ResultCache b(dir.str());
  std::atomic<int> failures{0};
  std::thread ta([&] {
    for (int i = 0; i < 30; ++i) {
      if (i % 7 == 0) a.inject_write_failures(1);
      if (!a.store(kKey, result)) failures.fetch_add(1);
    }
  });
  std::thread tb([&] {
    for (int i = 0; i < 30; ++i) {
      if (!b.store(kKey, result)) failures.fetch_add(1);
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(failures.load(), 0) << "same-bytes racers must all succeed";

  const auto loaded = ResultCache(dir.str()).load(kKey);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(serialize_result(*loaded), expected);
  // No temp litter: every unique temp name was renamed or unlinked.
  int temps = 0;
  for (const auto& entry : fs::directory_iterator(dir.str())) {
    if (entry.path().string().find(".tmp.") != std::string::npos) ++temps;
  }
  EXPECT_EQ(temps, 0);
}

// ---------------------------------------------------------------------------
// FleetWorker: options validation, single-worker completion, adoption,
// failures, re-attempts, stall timeout.
// ---------------------------------------------------------------------------

TEST(FleetWorker, ValidatesOptions) {
  EXPECT_THROW(FleetWorker(FleetOptions{}), std::invalid_argument);  // no dir
  FleetOptions bad_ttl = quiet_fleet("somewhere", "w");
  bad_ttl.lease_ttl_ms = 0;
  EXPECT_THROW(FleetWorker{bad_ttl}, std::invalid_argument);
  FleetOptions bad_hb = quiet_fleet("somewhere", "w");
  bad_hb.lease_ttl_ms = 1'000;
  bad_hb.heartbeat_ms = 1'000;  // must be strictly shorter
  EXPECT_THROW(FleetWorker{bad_hb}, std::invalid_argument);
  FleetOptions bad_id = quiet_fleet("somewhere", "w/1");
  EXPECT_THROW(FleetWorker{bad_id}, std::invalid_argument);
  // Defaults resolve: heartbeat to TTL/3, worker id to w<pid>.
  FleetOptions ok = quiet_fleet("somewhere", "");
  const FleetWorker worker(ok);
  EXPECT_EQ(worker.options().heartbeat_ms, 10'000u);
  EXPECT_EQ(worker.options().worker_id.rfind("w", 0), 0u);
}

TEST(FleetWorker, SingleWorkerCompletesAndMatchesSerialSweepBytes) {
  TempDir fleet_dir("worker_single");
  TempDir serial_dir("worker_single_serial");
  const SweepSpec sweep = tiny_sweep(4);

  FleetWorker worker(quiet_fleet(fleet_dir.str(), "solo"));
  const FleetSummary summary = worker.run(sweep);
  EXPECT_TRUE(summary.complete);
  EXPECT_EQ(summary.exit_code, 0);
  EXPECT_EQ(summary.ok, 4);
  EXPECT_EQ(summary.computed, 4);
  EXPECT_EQ(summary.lost_leases, 0);

  // The serial reference: a one-job resumable sweep of the same grid.
  SweepOptions serial;
  serial.jobs = 1;
  serial.progress = false;
  serial.resume_dir = serial_dir.str();
  SweepExecutor executor(serial);
  (void)executor.run(sweep);

  SweepManifest fleet_manifest(fleet_dir.str(), kSalt);
  SweepManifest serial_manifest(serial_dir.str(), kSalt);
  EXPECT_EQ(fleet_manifest.canonical_text(), serial_manifest.canonical_text());
  for (const SweepCell& cell : sweep.cells) {
    const std::string name = cache_key_hex(spec_cache_key(cell.spec, kSalt));
    const std::string fleet_bytes =
        read_file(fleet_dir.str() + "/results/" + name + ".ccres");
    const std::string serial_bytes =
        read_file(serial_dir.str() + "/results/" + name + ".ccres");
    ASSERT_FALSE(fleet_bytes.empty());
    EXPECT_EQ(fleet_bytes, serial_bytes) << "cell " << cell.name;
  }
}

TEST(FleetWorker, ThreeConcurrentWorkersAreByteIdenticalToSerial) {
  TempDir fleet_dir("worker_three");
  TempDir serial_dir("worker_three_serial");
  const SweepSpec sweep = tiny_sweep(6);

  std::vector<std::thread> threads;
  std::vector<FleetSummary> summaries(3);
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      try {
        FleetWorker worker(
            quiet_fleet(fleet_dir.str(), "w" + std::to_string(w)));
        summaries[static_cast<size_t>(w)] = worker.run(sweep);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "worker " << w << " threw: " << e.what();
      }
    });
  }
  for (auto& t : threads) t.join();

  int computed = 0;
  for (const FleetSummary& s : summaries) {
    EXPECT_TRUE(s.complete);
    EXPECT_EQ(s.exit_code, 0);
    EXPECT_EQ(s.ok, 6);
    computed += s.computed + s.adopted;
  }
  // A worker may re-commit a cell another worker finished between its
  // manifest reload and its claim — benign (identical bytes, agreeing
  // digests) and deliberately allowed by the protocol. Every cell is
  // committed at least once and nothing runs away.
  EXPECT_GE(computed, 6);
  EXPECT_LE(computed, 18);
  // Every worker rendered the identical final report.
  EXPECT_EQ(summaries[0].report, summaries[1].report);
  EXPECT_EQ(summaries[1].report, summaries[2].report);

  SweepOptions serial;
  serial.jobs = 1;
  serial.progress = false;
  serial.resume_dir = serial_dir.str();
  SweepExecutor executor(serial);
  (void)executor.run(sweep);

  SweepManifest fleet_manifest(fleet_dir.str(), kSalt);
  SweepManifest serial_manifest(serial_dir.str(), kSalt);
  EXPECT_EQ(fleet_manifest.canonical_text(), serial_manifest.canonical_text());
  for (const SweepCell& cell : sweep.cells) {
    const std::string name = cache_key_hex(spec_cache_key(cell.spec, kSalt));
    EXPECT_EQ(read_file(fleet_dir.str() + "/results/" + name + ".ccres"),
              read_file(serial_dir.str() + "/results/" + name + ".ccres"));
  }
}

TEST(FleetWorker, AdoptsResultsStoredByACrashedWorker) {
  TempDir dir("worker_adopt");
  const SweepSpec sweep = tiny_sweep(2);
  // A previous worker stored cell 1's result but died before journaling
  // it (the store-then-journal commit order makes this the only
  // mid-commit crash window).
  const uint64_t hash = spec_cache_key(sweep.cells[0].spec, kSalt);
  {
    FleetStore store(dir.str(), sweep, kSalt);
    ASSERT_TRUE(store.results().store(
        hash, run_experiment(sweep.cells[0].spec, nullptr)));
  }
  FleetWorker worker(quiet_fleet(dir.str(), "heir"));
  const FleetSummary summary = worker.run(sweep);
  EXPECT_TRUE(summary.complete);
  EXPECT_EQ(summary.adopted, 1);
  EXPECT_EQ(summary.computed, 1);
  // The adopted digest agrees with what a recompute journals elsewhere —
  // checked implicitly by the byte-identity tests above; here the record
  // simply must be ok.
  SweepManifest manifest(dir.str(), kSalt);
  EXPECT_TRUE(manifest.lookup(hash)->ok);
}

TEST(FleetWorker, JournalsFailuresQuarantinesAndReattemptsOncePerWorker) {
  TempDir dir("worker_fail");
  const SweepSpec sweep = tiny_sweep(3);
  const uint64_t hash = spec_cache_key(sweep.cells[1].spec, kSalt);
  FleetSummary first;
  {
    ScopedEnv env("CCAS_FAIL_CELL", "seed=2:throw");
    FleetWorker worker(quiet_fleet(dir.str(), "w1"));
    first = worker.run(sweep);
  }
  EXPECT_TRUE(first.complete) << "a failure record covers its cell";
  EXPECT_EQ(first.failed, 1);
  EXPECT_EQ(first.exit_code, 2);
  EXPECT_TRUE(fs::exists(dir.str() + "/quarantine/" + cache_key_hex(hash) +
                         ".repro"));

  // A second worker joining the store re-attempts the journaled failure
  // once (resume parity); without the injected fault it succeeds and
  // later-duplicate-wins turns the cell ok.
  FleetWorker worker2(quiet_fleet(dir.str(), "w2"));
  const FleetSummary second = worker2.run(sweep);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.reattempts, 1);
  EXPECT_EQ(second.failed, 0);
  EXPECT_EQ(second.exit_code, 0);
  SweepManifest manifest(dir.str(), kSalt);
  EXPECT_TRUE(manifest.lookup(hash)->ok);
}

TEST(FleetWorker, StallTimeoutExitsIncompleteWhenACellIsHeldForever) {
  TempDir dir("worker_stall");
  const SweepSpec sweep = tiny_sweep(2);
  // A foreign holder parks a very long lease on cell 1 before the worker
  // arrives: the worker computes cell 2, then can neither claim nor wait
  // out cell 1 within its stall timeout.
  FleetStore store(dir.str(), sweep, kSalt);
  LeaseDir foreign(store.lease_dir(), "parked", 600'000);
  ASSERT_TRUE(foreign.claim(spec_cache_key(sweep.cells[0].spec, kSalt)));

  FleetOptions opts = quiet_fleet(dir.str(), "w");
  opts.stall_timeout_ms = 300;
  FleetWorker worker(opts);
  const FleetSummary summary = worker.run(sweep);
  EXPECT_FALSE(summary.complete);
  EXPECT_EQ(summary.exit_code, 5);
  EXPECT_EQ(summary.ok, 1) << "the unheld cell still completed";
  EXPECT_NE(summary.report.find("pending"), std::string::npos);
}

}  // namespace
}  // namespace ccas::sweep::fleet
