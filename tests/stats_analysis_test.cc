// Tests for the measurement-analysis modules: Jain's fairness index,
// Goh-Barabasi burstiness, the Mathis-constant fitter, the per-flow
// measurement accounting, and the convergence detector.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/stats/burstiness.h"
#include "src/stats/convergence.h"
#include "src/stats/fairness.h"
#include "src/stats/flow_recorder.h"
#include "src/stats/mathis_fit.h"
#include "src/util/rng.h"

namespace ccas {
namespace {

// ----------------------------------------------------------- fairness ----

TEST(Jfi, PerfectlyFairIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{5.0, 5.0, 5.0}), 1.0);
}

TEST(Jfi, OneHotIsOneOverN) {
  EXPECT_NEAR(jain_fairness_index(std::vector<double>{10.0, 0.0, 0.0, 0.0}), 0.25,
              1e-12);
}

TEST(Jfi, ScaleInvariant) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b;
  for (const double x : a) b.push_back(x * 1e9);
  EXPECT_NEAR(jain_fairness_index(a), jain_fairness_index(b), 1e-12);
}

TEST(Jfi, KnownTwoFlowValue) {
  // (1+3)^2 / (2*(1+9)) = 16/20 = 0.8.
  EXPECT_NEAR(jain_fairness_index(std::vector<double>{1.0, 3.0}), 0.8, 1e-12);
}

TEST(Jfi, Validation) {
  EXPECT_THROW((void)jain_fairness_index({}), std::invalid_argument);
  EXPECT_THROW((void)jain_fairness_index(std::vector<double>{-1.0}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(ShareOfTotal, Computes) {
  const std::vector<double> group{2.0, 2.0};
  const std::vector<double> all{2.0, 2.0, 6.0};
  EXPECT_NEAR(share_of_total(group, all), 0.4, 1e-12);
  EXPECT_EQ(share_of_total(group, std::vector<double>{}), 0.0);
}

// Property: JFI in [1/n, 1] for any non-negative allocation.
class JfiRange : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JfiRange, WithinBounds) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 1 + rng.next_below(50);
    std::vector<double> xs;
    bool any_positive = false;
    for (size_t i = 0; i < n; ++i) {
      xs.push_back(rng.next_double() < 0.2 ? 0.0 : rng.next_range(0.0, 100.0));
      any_positive |= xs.back() > 0.0;
    }
    if (!any_positive) xs[0] = 1.0;
    const double jfi = jain_fairness_index(xs);
    EXPECT_GE(jfi, 1.0 / static_cast<double>(n) - 1e-12);
    EXPECT_LE(jfi, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JfiRange, ::testing::Values(1u, 2u, 3u));

// --------------------------------------------------------- burstiness ----

TEST(Burstiness, PeriodicIsMinusOne) {
  std::vector<double> intervals(100, 0.5);  // perfectly regular
  EXPECT_NEAR(goh_barabasi_burstiness(intervals), -1.0, 1e-9);
}

TEST(Burstiness, PoissonIsNearZero) {
  Rng rng(17);
  std::vector<double> intervals;
  for (int i = 0; i < 100000; ++i) {
    intervals.push_back(-std::log(1.0 - rng.next_double()));  // Exp(1)
  }
  EXPECT_NEAR(goh_barabasi_burstiness(intervals), 0.0, 0.02);
}

TEST(Burstiness, HeavyTailIsPositive) {
  Rng rng(23);
  std::vector<double> intervals;
  for (int i = 0; i < 100000; ++i) {
    // Pareto(alpha=1.5): high variance relative to mean.
    intervals.push_back(std::pow(1.0 - rng.next_double(), -1.0 / 1.5));
  }
  EXPECT_GT(goh_barabasi_burstiness(intervals), 0.15);
}

TEST(Burstiness, FromTimestamps) {
  std::vector<Time> events;
  for (int i = 0; i < 10; ++i) events.push_back(Time::seconds_f(i * 2.0));
  EXPECT_NEAR(goh_barabasi_burstiness_from_times(events), -1.0, 1e-9);
}

TEST(Burstiness, Validation) {
  EXPECT_THROW((void)goh_barabasi_burstiness(std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)goh_barabasi_burstiness(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
  std::vector<Time> unordered{Time::seconds_f(2), Time::seconds_f(1),
                              Time::seconds_f(3)};
  EXPECT_THROW((void)goh_barabasi_burstiness_from_times(unordered), std::invalid_argument);
}

// ---------------------------------------------------------- mathis fit ----

TEST(MathisFit, RecoversExactConstant) {
  // Synthetic flows that obey the model exactly with C = 1.4.
  std::vector<MathisObservation> obs;
  for (double p : {1e-4, 4e-4, 1e-3, 5e-3}) {
    MathisObservation o;
    o.p = p;
    o.rtt = TimeDelta::millis(20);
    o.throughput_bps = 1448.0 * 8.0 * 1.4 / (0.02 * std::sqrt(p));
    obs.push_back(o);
  }
  const MathisFit fit = fit_mathis_constant(obs, 1448);
  EXPECT_NEAR(fit.c, 1.4, 1e-9);
  EXPECT_NEAR(fit.median_error, 0.0, 1e-9);
  EXPECT_EQ(fit.flows_used, 4u);
}

TEST(MathisFit, SkipsUnusableObservations) {
  std::vector<MathisObservation> obs(3);
  obs[0] = {1e6, 0.0, TimeDelta::millis(20)};   // p = 0: skipped
  obs[1] = {0.0, 1e-3, TimeDelta::millis(20)};  // zero throughput: skipped
  obs[2] = {1448.0 * 8.0 / (0.02 * std::sqrt(1e-3)), 1e-3, TimeDelta::millis(20)};
  const MathisFit fit = fit_mathis_constant(obs, 1448);
  EXPECT_EQ(fit.flows_used, 1u);
  EXPECT_NEAR(fit.c, 1.0, 1e-9);
}

TEST(MathisFit, WrongPInterpretationShowsAsError) {
  // Flows obey the model with halving rate p, but we feed 6x that value
  // (the loss-vs-halving divergence at CoreScale): the best fit is still
  // biased with sqrt(6) error structure unless all flows share the ratio.
  std::vector<MathisObservation> right;
  std::vector<MathisObservation> wrong;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const double p = rng.next_range(1e-4, 5e-3);
    MathisObservation o;
    o.rtt = TimeDelta::millis(20);
    o.p = p;
    o.throughput_bps = 1448.0 * 8.0 * 1.4 / (0.02 * std::sqrt(p));
    right.push_back(o);
    MathisObservation w = o;
    // Flow-count-dependent ratio, as the paper observes (6x to 9x).
    w.p = p * rng.next_range(6.0, 9.0);
    wrong.push_back(w);
  }
  const MathisFit fit_right = fit_mathis_constant(right, 1448);
  const MathisFit fit_wrong = fit_mathis_constant(wrong, 1448);
  EXPECT_LT(fit_right.median_error, 1e-9);
  // The wrong interpretation inflates the fitted constant (~sqrt(6-9)x)
  // and leaves residual error because the ratio varies per flow.
  EXPECT_GT(fit_wrong.c, fit_right.c * 2.0);
  EXPECT_GT(fit_wrong.median_error, 0.02);
}

TEST(MathisFit, EvaluateWithGivenConstant) {
  std::vector<MathisObservation> obs;
  MathisObservation o;
  o.p = 1e-3;
  o.rtt = TimeDelta::millis(20);
  o.throughput_bps = 1448.0 * 8.0 * 2.0 / (0.02 * std::sqrt(1e-3));
  obs.push_back(o);
  const auto errors = mathis_relative_errors(obs, 1.0, 1448);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NEAR(errors[0], 0.5, 1e-9);  // predicted half the actual
}

// ------------------------------------------------------- flow recorder ----

TEST(FlowMeasurement, ComputesWindowMetrics) {
  FlowCounters begin;
  begin.at = Time::seconds_f(10);
  begin.segments_sent = 1000;
  begin.delivered = 900;
  begin.congestion_events = 5;
  begin.rto_events = 1;
  begin.queue_drops = 10;
  begin.rcv_in_order = 890;
  FlowCounters end = begin;
  end.at = Time::seconds_f(20);
  end.segments_sent = 3000;
  end.delivered = 2900;
  end.congestion_events = 9;
  end.rto_events = 2;
  end.queue_drops = 30;
  end.rcv_in_order = 2890;

  const FlowMeasurement m = measure_flow(7, begin, end, 1448);
  EXPECT_EQ(m.flow_id, 7u);
  EXPECT_EQ(m.window, TimeDelta::seconds(10));
  EXPECT_EQ(m.segments_sent, 2000u);
  EXPECT_EQ(m.queue_drops, 20u);
  EXPECT_NEAR(m.goodput_bps, 2000.0 * 1448 * 8 / 10.0, 1.0);
  EXPECT_NEAR(m.packet_loss_rate, 20.0 / 2000.0, 1e-12);
  // Halving rate counts fast recoveries + RTOs per delivered segment.
  EXPECT_NEAR(m.cwnd_halving_rate, 5.0 / 2000.0, 1e-12);
}

TEST(FlowMeasurement, OutOfOrderSnapshotsThrow) {
  FlowCounters a;
  a.at = Time::seconds_f(5);
  FlowCounters b;
  b.at = Time::seconds_f(1);
  EXPECT_THROW((void)measure_flow(0, a, b, 1448), std::invalid_argument);
}

// --------------------------------------------------------- convergence ----

TEST(Convergence, NotConvergedUntilWindowCovered) {
  ConvergenceDetector d(TimeDelta::seconds(10), 0.01);
  d.add_sample(Time::seconds_f(0), 100.0);
  d.add_sample(Time::seconds_f(5), 100.0);
  EXPECT_FALSE(d.converged());
  d.add_sample(Time::seconds_f(10), 100.0);
  EXPECT_TRUE(d.converged());
}

TEST(Convergence, DetectsInstability) {
  ConvergenceDetector d(TimeDelta::seconds(10), 0.01);
  for (int t = 0; t <= 20; ++t) {
    d.add_sample(Time::seconds_f(t), 100.0 + (t % 2) * 5.0);  // 5% swing
  }
  EXPECT_FALSE(d.converged());
}

TEST(Convergence, ConvergesAfterStabilization) {
  ConvergenceDetector d(TimeDelta::seconds(10), 0.01);
  for (int t = 0; t <= 15; ++t) {
    d.add_sample(Time::seconds_f(t), t < 8 ? 20.0 + 10.0 * t : 100.0);
  }
  EXPECT_FALSE(d.converged());  // the ramp (up to t=7) is inside the window
  for (int t = 16; t <= 30; ++t) d.add_sample(Time::seconds_f(t), 100.0);
  EXPECT_TRUE(d.converged());
}

TEST(Convergence, RelativeToleranceRespected) {
  ConvergenceDetector d(TimeDelta::seconds(4), 0.01);
  for (int t = 0; t <= 12; ++t) {
    d.add_sample(Time::seconds_f(t), 1000.0 + static_cast<double>(t % 3));
  }
  EXPECT_TRUE(d.converged());  // 0.3% swing < 1% tolerance
}

}  // namespace
}  // namespace ccas
