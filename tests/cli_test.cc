#include "src/harness/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/harness/runner.h"
#include "src/sweep/spec_hash.h"

namespace ccas {
namespace {

TEST(Cli, ParsesFullConfiguration) {
  const CliOptions o = parse_cli(
      {"--setting=edge", "--groups=bbr:1:20,newreno:16:100", "--rate=400",
       "--buffer=1000000", "--stagger=1", "--warmup=5", "--measure=30",
       "--seed=9", "--jitter=250", "--trace=0.5", "--csv=out"});
  EXPECT_EQ(o.spec.scenario.net.bottleneck_rate, DataRate::mbps(400));
  EXPECT_EQ(o.spec.scenario.net.buffer_bytes, 1'000'000);
  ASSERT_EQ(o.spec.groups.size(), 2u);
  EXPECT_EQ(o.spec.groups[0].cca, "bbr");
  EXPECT_EQ(o.spec.groups[0].count, 1);
  EXPECT_EQ(o.spec.groups[0].rtt, TimeDelta::millis(20));
  EXPECT_EQ(o.spec.groups[1].cca, "newreno");
  EXPECT_EQ(o.spec.groups[1].count, 16);
  EXPECT_EQ(o.spec.groups[1].rtt, TimeDelta::millis(100));
  EXPECT_EQ(o.spec.scenario.stagger, TimeDelta::seconds(1));
  EXPECT_EQ(o.spec.scenario.warmup, TimeDelta::seconds(5));
  EXPECT_EQ(o.spec.scenario.measure, TimeDelta::seconds(30));
  EXPECT_EQ(o.spec.seed, 9u);
  EXPECT_EQ(o.spec.scenario.net.jitter, TimeDelta::micros(250));
  EXPECT_EQ(o.spec.trace_interval, TimeDelta::millis(500));
  EXPECT_EQ(o.csv_prefix, "out");
}

TEST(Cli, DefaultsToCoreScale) {
  const CliOptions o = parse_cli({"--groups=cubic:10:20"});
  EXPECT_EQ(o.spec.scenario.net.bottleneck_rate, DataRate::gbps(10));
  EXPECT_EQ(o.spec.scenario.net.buffer_bytes, 375'000'000);
  EXPECT_TRUE(o.spec.tcp.sack_enabled);
  EXPECT_TRUE(o.spec.receiver.delayed_ack);
  EXPECT_TRUE(o.spec.receiver.gro_enabled);
  EXPECT_EQ(o.spec.trace_interval, TimeDelta::zero());
}

TEST(Cli, OverridesApplyRegardlessOfFlagOrder) {
  const CliOptions o =
      parse_cli({"--rate=50", "--groups=newreno:1:20", "--setting=edge"});
  // --rate wins even though --setting came later.
  EXPECT_EQ(o.spec.scenario.net.bottleneck_rate, DataRate::mbps(50));
}

TEST(Cli, FeatureToggles) {
  const CliOptions o = parse_cli(
      {"--groups=newreno:1:20", "--no-sack", "--no-delack", "--no-gro"});
  EXPECT_FALSE(o.spec.tcp.sack_enabled);
  EXPECT_FALSE(o.spec.receiver.delayed_ack);
  EXPECT_FALSE(o.spec.receiver.gro_enabled);
}

TEST(Cli, Rejections) {
  EXPECT_THROW(parse_cli({}), std::invalid_argument);  // no groups
  EXPECT_THROW(parse_cli({"--groups=nosuchcca:1:20"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:0:20"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:-5"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--setting=banana"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--bogus=1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--rate=abc"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--buffer=-3"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"positional"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--warmup"}),
               std::invalid_argument);
}

TEST(Cli, SweepFlags) {
  const CliOptions o =
      parse_cli({"--groups=newreno:1:20", "--seeds=1,2,3", "--jobs=4",
                 "--cache-dir=cachedir", "--no-cache"});
  EXPECT_EQ(o.seeds, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(o.sweep.jobs, 4);
  EXPECT_EQ(o.sweep.cache_dir, "cachedir");
  EXPECT_FALSE(o.sweep.use_cache);
}

TEST(Cli, SweepDefaults) {
  const CliOptions o = parse_cli({"--groups=newreno:1:20"});
  EXPECT_TRUE(o.seeds.empty());
  EXPECT_TRUE(o.sweep.cache_dir.empty());
  EXPECT_TRUE(o.sweep.use_cache);
}

TEST(Cli, SweepRejections) {
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--jobs=-1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--seeds="}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--seeds=1,x"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--cache-dir="}),
               std::invalid_argument);
}

TEST(Cli, JobsRequiresPositiveInteger) {
  // --jobs=0 is NOT "hardware concurrency" (that's the no-flag default):
  // it must error rather than silently run at full parallelism.
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--jobs=0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--jobs=2.5"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--jobs=1e2"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--jobs=abc"}),
               std::invalid_argument);
  EXPECT_EQ(parse_cli({"--groups=cubic:1:20", "--jobs=1"}).sweep.jobs, 1);
  // Absent flag: stays 0, resolved to hardware concurrency by the executor.
  EXPECT_EQ(parse_cli({"--groups=cubic:1:20"}).sweep.jobs, 0);
}

TEST(Cli, SeedsRejectNegativeAndFractionalEntries) {
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--seeds=-1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--seeds=1,-2,3"}),
               std::invalid_argument);
  // "1.5" truncating to seed 1 would silently run a different experiment.
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--seeds=1.5"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--seed=-7"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--seed=7.5"}),
               std::invalid_argument);
  EXPECT_EQ(parse_cli({"--groups=cubic:1:20", "--seeds=0,2"}).seeds,
            (std::vector<uint64_t>{0, 2}));
}

TEST(Cli, NoCacheEnvTakesPrecedenceOverCacheDirFlag) {
  // CCAS_NO_CACHE must win over --cache-dir deterministically: the dir is
  // still recorded, but the cache is neither read nor written.
  setenv("CCAS_NO_CACHE", "1", 1);
  const CliOptions off = parse_cli({"--groups=cubic:1:20", "--cache-dir=d"});
  EXPECT_FALSE(off.sweep.use_cache);
  EXPECT_EQ(off.sweep.cache_dir, "d");
  // CCAS_NO_CACHE=0 and empty both mean "not set".
  setenv("CCAS_NO_CACHE", "0", 1);
  EXPECT_TRUE(parse_cli({"--groups=cubic:1:20", "--cache-dir=d"}).sweep.use_cache);
  setenv("CCAS_NO_CACHE", "", 1);
  EXPECT_TRUE(parse_cli({"--groups=cubic:1:20", "--cache-dir=d"}).sweep.use_cache);
  unsetenv("CCAS_NO_CACHE");
  EXPECT_TRUE(parse_cli({"--groups=cubic:1:20", "--cache-dir=d"}).sweep.use_cache);
}

TEST(Cli, UsageMentionsEveryCca) {
  const std::string usage = cli_usage();
  for (const char* cca : {"newreno", "cubic", "bbr", "bbr2", "vegas", "copa"}) {
    EXPECT_NE(usage.find(cca), std::string::npos) << cca;
  }
}

// ------------------------------------------------- impairment flags ----

TEST(Cli, ParsesImpairmentFlags) {
  const CliOptions o = parse_cli(
      {"--groups=cubic:1:20", "--loss=0.001", "--ge-loss=0.01:0.3:0.5:0.002",
       "--dup=0.005", "--reorder=0.02:1.5", "--link-jitter=200:normal",
       "--flap=2:3,10:11", "--rate-change=5:250", "--buffer-change=7:500000"});
  const ImpairmentConfig& imp = o.spec.scenario.net.impairments;
  EXPECT_TRUE(imp.enabled());
  EXPECT_DOUBLE_EQ(imp.loss, 0.001);
  EXPECT_DOUBLE_EQ(imp.ge.p_good_to_bad, 0.01);
  EXPECT_DOUBLE_EQ(imp.ge.p_bad_to_good, 0.3);
  EXPECT_DOUBLE_EQ(imp.ge.loss_bad, 0.5);
  EXPECT_DOUBLE_EQ(imp.ge.loss_good, 0.002);
  EXPECT_DOUBLE_EQ(imp.duplicate, 0.005);
  EXPECT_DOUBLE_EQ(imp.reorder, 0.02);
  EXPECT_EQ(imp.reorder_delay, TimeDelta::micros(1500));
  EXPECT_EQ(imp.jitter, TimeDelta::micros(200));
  EXPECT_EQ(imp.jitter_dist, ImpairmentConfig::JitterDist::kNormal);
  // Faults from all three flags merge into one time-sorted schedule.
  ASSERT_EQ(imp.faults.size(), 6u);
  EXPECT_EQ(imp.faults[0].at, Time::seconds_f(2.0));
  EXPECT_EQ(imp.faults[0].kind, LinkFault::Kind::kDown);
  EXPECT_EQ(imp.faults[1].kind, LinkFault::Kind::kUp);
  EXPECT_EQ(imp.faults[2].at, Time::seconds_f(5.0));
  EXPECT_EQ(imp.faults[2].kind, LinkFault::Kind::kRate);
  EXPECT_EQ(imp.faults[2].rate, DataRate::mbps(250));
  EXPECT_EQ(imp.faults[3].kind, LinkFault::Kind::kBuffer);
  EXPECT_EQ(imp.faults[3].buffer_bytes, 500'000);
  EXPECT_EQ(imp.faults[4].at, Time::seconds_f(10.0));
  // The whole merged schedule must validate (strictly increasing).
  EXPECT_NO_THROW(imp.validate());
}

TEST(Cli, ImpairmentsDefaultToDisabled) {
  const CliOptions o = parse_cli({"--groups=cubic:1:20"});
  EXPECT_FALSE(o.spec.scenario.net.impairments.enabled());
  // The legacy --jitter flag targets the forward netem, not the stage.
  const CliOptions j = parse_cli({"--groups=cubic:1:20", "--jitter=100"});
  EXPECT_FALSE(j.spec.scenario.net.impairments.enabled());
  EXPECT_EQ(j.spec.scenario.net.jitter, TimeDelta::micros(100));
}

TEST(Cli, ImpairmentProbabilitiesMustBeInUnitInterval) {
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--loss=1.5"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--loss=-0.1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--dup=2"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--reorder=1.1:1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--ge-loss=1.5:0.3:0.5"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--ge-loss=0.01:0.3:-0.5"}),
               std::invalid_argument);
  // GE bad state must be leavable.
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--ge-loss=0.01:0:0.5"}),
               std::invalid_argument);
}

TEST(Cli, ImpairmentFlagShapesAreStrict) {
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--loss=abc"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--ge-loss=0.01:0.3"}),
               std::invalid_argument);  // too few fields
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--reorder=0.02"}),
               std::invalid_argument);  // missing window
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--reorder=0.02:0"}),
               std::invalid_argument);  // non-positive window
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--link-jitter=-5"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--link-jitter=10:gaussian"}),
               std::invalid_argument);  // unknown distribution
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--flap=2"}),
               std::invalid_argument);  // not down:up
}

TEST(Cli, FaultSchedulesMustBeMonotonicAndPositive) {
  // Non-monotonic within one flag.
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--flap=5:6,2:3"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--rate-change=5:100,5:200"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--buffer-change=3:100,2:200"}),
               std::invalid_argument);
  // A flap window must close after it opens.
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--flap=3:3"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--flap=-1:2"}),
               std::invalid_argument);
  // Positive-value requirements.
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--rate-change=5:0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--rate-change=5:-10"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--buffer-change=5:0"}),
               std::invalid_argument);
  // Cross-flag ties are rejected by the merged-schedule validation.
  EXPECT_THROW(
      parse_cli({"--groups=cubic:1:20", "--flap=5:6", "--rate-change=5:100"}),
      std::invalid_argument);
}

TEST(Cli, UsageMentionsImpairmentFlags) {
  const std::string usage = cli_usage();
  for (const char* flag : {"--loss", "--ge-loss", "--dup", "--reorder",
                           "--link-jitter", "--flap", "--rate-change",
                           "--buffer-change"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(Cli, ParsesSupervisionFlags) {
  const CliOptions o = parse_cli(
      {"--groups=newreno:1:20", "--cell-timeout=30", "--cell-events=1000000",
       "--cell-rss=512", "--retries=5", "--max-failures=3",
       "--resume=run1", "--quarantine=quar"});
  EXPECT_EQ(o.sweep.cell_timeout, TimeDelta::seconds(30));
  EXPECT_EQ(o.sweep.max_cell_events, 1'000'000u);
  EXPECT_EQ(o.sweep.max_cell_rss_bytes, 512'000'000);
  EXPECT_EQ(o.sweep.retries, 5);
  EXPECT_EQ(o.sweep.max_failures, 3);
  EXPECT_EQ(o.sweep.resume_dir, "run1");
  EXPECT_EQ(o.sweep.quarantine_dir, "quar");
  EXPECT_FALSE(o.sweep.fail_fast);
}

TEST(Cli, SupervisionDefaultsAreIsolationWithTwoRetries) {
  const CliOptions o = parse_cli({"--groups=newreno:1:20"});
  EXPECT_EQ(o.sweep.cell_timeout, TimeDelta::zero());
  EXPECT_EQ(o.sweep.max_cell_events, 0u);
  EXPECT_EQ(o.sweep.max_cell_rss_bytes, 0);
  EXPECT_EQ(o.sweep.retries, 2);
  EXPECT_EQ(o.sweep.max_failures, 0);
  EXPECT_FALSE(o.sweep.fail_fast);
}

TEST(Cli, SupervisionBudgetsMustBePositive) {
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--cell-timeout=0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--cell-timeout=-1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--cell-timeout=1e-12"}),
               std::invalid_argument);  // rounds to zero nanoseconds
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--cell-events=0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--cell-events=-5"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--cell-events=2.5"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--cell-rss=0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--cell-rss=1e-9"}),
               std::invalid_argument);  // rounds to zero bytes
}

TEST(Cli, RetriesMustBeInRange) {
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--retries=-1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--retries=17"}),
               std::invalid_argument);
  EXPECT_EQ(parse_cli({"--groups=cubic:1:20", "--retries=0"}).sweep.retries, 0);
  EXPECT_EQ(parse_cli({"--groups=cubic:1:20", "--retries=16"}).sweep.retries,
            16);
}

TEST(Cli, MaxFailuresZeroSuggestsFailFast) {
  try {
    (void)parse_cli({"--groups=cubic:1:20", "--max-failures=0"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--fail-fast"), std::string::npos);
  }
}

TEST(Cli, FailFastTakesNoValueAndExcludesMaxFailures) {
  EXPECT_TRUE(
      parse_cli({"--groups=cubic:1:20", "--fail-fast"}).sweep.fail_fast);
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--fail-fast=1"}),
               std::invalid_argument);
  EXPECT_THROW(
      parse_cli({"--groups=cubic:1:20", "--fail-fast", "--max-failures=2"}),
      std::invalid_argument);
}

TEST(Cli, FailFastRejectsResume) {
  try {
    (void)parse_cli({"--groups=cubic:1:20", "--fail-fast", "--resume=dir"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error steers toward the supported equivalent.
    EXPECT_NE(std::string(e.what()).find("--max-failures=1"),
              std::string::npos);
  }
}

TEST(Cli, QdiscFlagsParse) {
  const CliOptions o = parse_cli(
      {"--groups=cubic:2:20", "--qdisc=fq-codel", "--ecn", "--codel=7:140",
       "--fq=128:3028"});
  const QdiscConfig& qd = o.spec.scenario.net.qdisc;
  EXPECT_EQ(qd.kind, QdiscKind::kFqCoDel);
  EXPECT_TRUE(qd.ecn);
  EXPECT_EQ(qd.codel_target, TimeDelta::millis(7));
  EXPECT_EQ(qd.codel_interval, TimeDelta::millis(140));
  EXPECT_EQ(qd.fq_flows, 128u);
  EXPECT_EQ(qd.fq_quantum, 3028);

  const CliOptions pie = parse_cli(
      {"--groups=cubic:2:20", "--qdisc=pie", "--pie=20:30"});
  EXPECT_EQ(pie.spec.scenario.net.qdisc.kind, QdiscKind::kPie);
  EXPECT_EQ(pie.spec.scenario.net.qdisc.pie_target, TimeDelta::millis(20));
  EXPECT_EQ(pie.spec.scenario.net.qdisc.pie_tupdate, TimeDelta::millis(30));

  const CliOptions red = parse_cli(
      {"--groups=cubic:2:20", "--qdisc=red", "--red=100000:400000:0.2"});
  EXPECT_EQ(red.spec.scenario.net.qdisc.kind, QdiscKind::kRed);
  EXPECT_EQ(red.spec.scenario.net.qdisc.red_min_bytes, 100'000);
  EXPECT_EQ(red.spec.scenario.net.qdisc.red_max_bytes, 400'000);
  EXPECT_DOUBLE_EQ(red.spec.scenario.net.qdisc.red_max_p, 0.2);

  // Default stays drop-tail with ECN off.
  const CliOptions plain = parse_cli({"--groups=cubic:2:20"});
  EXPECT_EQ(plain.spec.scenario.net.qdisc.kind, QdiscKind::kDropTail);
  EXPECT_FALSE(plain.spec.scenario.net.qdisc.ecn);
}

TEST(Cli, QdiscRejections) {
  // Unknown scheduler name.
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--qdisc=banana"}),
               std::invalid_argument);
  // ECN requires an AQM qdisc (and takes no value).
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--ecn"}),
               std::invalid_argument);
  EXPECT_THROW(
      parse_cli({"--groups=cubic:1:20", "--qdisc=codel", "--ecn=1"}),
      std::invalid_argument);
  // CoDel target must stay below the interval.
  EXPECT_THROW(
      parse_cli({"--groups=cubic:1:20", "--qdisc=codel", "--codel=100:5"}),
      std::invalid_argument);
  EXPECT_THROW(
      parse_cli({"--groups=cubic:1:20", "--qdisc=codel", "--codel=0:100"}),
      std::invalid_argument);
  // RED min threshold must stay below max.
  EXPECT_THROW(parse_cli({"--groups=cubic:1:20", "--qdisc=red",
                          "--red=2000000:1000000"}),
               std::invalid_argument);
  // PIE tupdate must be positive (caught by QdiscConfig::validate()).
  EXPECT_THROW(
      parse_cli({"--groups=cubic:1:20", "--qdisc=pie", "--pie=15:0"}),
      std::invalid_argument);
  // Malformed pair syntax and bad FQ sizes.
  EXPECT_THROW(
      parse_cli({"--groups=cubic:1:20", "--qdisc=codel", "--codel=5"}),
      std::invalid_argument);
  EXPECT_THROW(
      parse_cli({"--groups=cubic:1:20", "--qdisc=fq-codel", "--fq=0:1514"}),
      std::invalid_argument);
}

TEST(Cli, QdiscSpecCliRoundTrip) {
  // Every AQM kind (with non-default knobs) renders to flags that parse
  // back to the identical canonical spec.
  std::vector<std::vector<std::string>> cases = {
      {"--groups=cubic:2:20", "--qdisc=codel", "--ecn", "--codel=3:60"},
      {"--groups=cubic:2:20,bbr:2:80", "--qdisc=fq-codel", "--fq=32:1000"},
      {"--groups=newreno:4:20", "--qdisc=pie", "--ecn", "--pie=10:12"},
      {"--groups=cubic:8:20", "--qdisc=red", "--red=50000:150000:0.05"},
      {"--groups=cubic:8:20", "--qdisc=drop-tail"},
  };
  for (const auto& args : cases) {
    const CliOptions original = parse_cli(args);
    const SpecCliRendering rendering = spec_to_cli(original.spec);
    EXPECT_TRUE(rendering.notes.empty());
    const CliOptions reparsed = parse_cli(rendering.args);
    EXPECT_EQ(sweep::spec_cache_key(original.spec),
              sweep::spec_cache_key(reparsed.spec));
    EXPECT_EQ(sweep::canonical_spec_bytes(original.spec),
              sweep::canonical_spec_bytes(reparsed.spec));
  }
}

TEST(Cli, UsageMentionsSupervisionFlagsAndExitCodes) {
  const std::string usage = cli_usage();
  for (const char* flag :
       {"--cell-timeout", "--cell-events", "--cell-rss", "--retries",
        "--max-failures", "--resume", "--quarantine", "--fail-fast"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
  EXPECT_NE(usage.find("Exit codes"), std::string::npos);
}

TEST(Cli, ShardsRequiresPositiveInteger) {
  // Like --jobs: --shards=0 is a typo, not "serial"; fractions and
  // exponents truncating would silently run a different partition.
  EXPECT_THROW(parse_cli({"--groups=cubic:4:20", "--shards=0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:4:20", "--shards=-2"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:4:20", "--shards=2.5"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:4:20", "--shards=1e2"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--groups=cubic:4:20", "--shards=abc"}),
               std::invalid_argument);
  EXPECT_EQ(parse_cli({"--groups=cubic:4:20", "--shards=4"}).spec.shards, 4);
  EXPECT_EQ(parse_cli({"--groups=cubic:4:20"}).spec.shards, 1);
}

TEST(Cli, ShardsEnvDefaultAndFlagPrecedence) {
  setenv("CCAS_SHARDS", "3", 1);
  EXPECT_EQ(parse_cli({"--groups=cubic:4:20"}).spec.shards, 3);
  // An explicit flag wins over the environment default.
  EXPECT_EQ(parse_cli({"--groups=cubic:4:20", "--shards=2"}).spec.shards, 2);
  setenv("CCAS_SHARDS", "0", 1);
  EXPECT_THROW(parse_cli({"--groups=cubic:4:20"}), std::invalid_argument);
  setenv("CCAS_SHARDS", "junk", 1);
  EXPECT_THROW(parse_cli({"--groups=cubic:4:20"}), std::invalid_argument);
  // Empty means "not set".
  setenv("CCAS_SHARDS", "", 1);
  EXPECT_EQ(parse_cli({"--groups=cubic:4:20"}).spec.shards, 1);
  unsetenv("CCAS_SHARDS");
  EXPECT_EQ(parse_cli({"--groups=cubic:4:20"}).spec.shards, 1);
}

TEST(Cli, ShardsBeyondFlowCountIsASpecError) {
  // Every domain needs at least one flow; the check lives in the runner's
  // spec validation so it also guards API users, not just the CLI.
  ExperimentSpec spec = parse_cli({"--groups=cubic:4:20", "--shards=5"}).spec;
  EXPECT_THROW(run_experiment(spec), std::invalid_argument);
  // --jobs controls sweep workers and must not loosen or tighten the
  // per-cell shard validation.
  const CliOptions o =
      parse_cli({"--groups=cubic:4:20", "--shards=4", "--jobs=2"});
  EXPECT_EQ(o.spec.shards, 4);
  EXPECT_EQ(o.sweep.jobs, 2);
}

TEST(Cli, ShardsSpecCliRoundTrip) {
  // Non-default shard counts render and reparse to the identical spec;
  // the default renders to nothing (serial cache keys keep their bytes).
  for (const char* flag : {"--shards=2", "--shards=8"}) {
    const CliOptions original = parse_cli({"--groups=cubic:8:20", flag});
    const SpecCliRendering rendering = spec_to_cli(original.spec);
    EXPECT_TRUE(rendering.notes.empty());
    const CliOptions reparsed = parse_cli(rendering.args);
    EXPECT_EQ(reparsed.spec.shards, original.spec.shards);
    EXPECT_EQ(sweep::canonical_spec_bytes(original.spec),
              sweep::canonical_spec_bytes(reparsed.spec));
  }
  const CliOptions serial = parse_cli({"--groups=cubic:8:20"});
  for (const std::string& arg : spec_to_cli(serial.spec).args) {
    EXPECT_EQ(arg.find("--shards"), std::string::npos) << arg;
  }
  EXPECT_NE(cli_usage().find("--shards"), std::string::npos);
}

TEST(Cli, WorkloadParsesFullConfiguration) {
  const CliOptions o = parse_cli(
      {"--setting=edge", "--workload=poisson:500", "--workload-max=2000",
       "--workload-class=web:0.9:cubic:20:pareto/1.3/4/400:web/8/5",
       "--workload-class=bulk:0.1:bbr:40:lognormal/5/1.2/10/10000:bulk"});
  const WorkloadSpec& wl = o.spec.workload;
  EXPECT_TRUE(wl.enabled());
  EXPECT_EQ(wl.arrival, ArrivalKind::kPoisson);
  EXPECT_DOUBLE_EQ(wl.arrivals_per_sec, 500.0);
  EXPECT_EQ(wl.max_concurrent, 2000u);
  ASSERT_EQ(wl.classes.size(), 2u);
  EXPECT_EQ(wl.classes[0].name, "web");
  EXPECT_DOUBLE_EQ(wl.classes[0].weight, 0.9);
  EXPECT_EQ(wl.classes[0].cca, "cubic");
  EXPECT_EQ(wl.classes[0].rtt, TimeDelta::millis(20));
  EXPECT_EQ(wl.classes[0].size.kind, SizeDistKind::kPareto);
  EXPECT_DOUBLE_EQ(wl.classes[0].size.pareto_alpha, 1.3);
  EXPECT_EQ(wl.classes[0].size.min_segments, 4u);
  EXPECT_EQ(wl.classes[0].size.max_segments, 400u);
  EXPECT_EQ(wl.classes[0].app, AppModel::kWebObject);
  EXPECT_EQ(wl.classes[0].app_burst_segments, 8u);
  EXPECT_EQ(wl.classes[0].app_gap, TimeDelta::millis(5));
  EXPECT_EQ(wl.classes[1].size.kind, SizeDistKind::kLognormal);
  EXPECT_DOUBLE_EQ(wl.classes[1].size.lognormal_mu, 5.0);
  EXPECT_DOUBLE_EQ(wl.classes[1].size.lognormal_sigma, 1.2);
  EXPECT_EQ(wl.classes[1].app, AppModel::kBulk);
  // Workload-only specs need no --groups.
  EXPECT_TRUE(o.spec.groups.empty());

  const CliOptions det = parse_cli(
      {"--workload=fixed:100",
       "--workload-class=v:1:cubic:30:fixed/50:video/25/40"});
  EXPECT_EQ(det.spec.workload.arrival, ArrivalKind::kDeterministic);
  EXPECT_EQ(det.spec.workload.classes[0].size.kind, SizeDistKind::kFixed);
  EXPECT_EQ(det.spec.workload.classes[0].size.fixed_segments, 50u);
  EXPECT_EQ(det.spec.workload.classes[0].app, AppModel::kVideoChunk);
  EXPECT_EQ(det.spec.workload.classes[0].app_gap, TimeDelta::millis(40));
}

TEST(Cli, WorkloadRejections) {
  const std::string cls = "--workload-class=w:1:cubic:20:fixed/10:bulk";
  // Arrival process and rate.
  EXPECT_THROW(parse_cli({"--workload=uniform:100", cls}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson", cls}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:0", cls}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:-5", cls}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:inf", cls}), std::invalid_argument);
  // Classes without a rate, and a rate without classes.
  EXPECT_THROW(parse_cli({cls}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10"}), std::invalid_argument);
  // Neither groups nor workload.
  EXPECT_THROW(parse_cli({}), std::invalid_argument);
  // Field count, empty name, bad weight, unknown CCA, bad RTT.
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:1:cubic:20:fixed/10"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=:1:cubic:20:fixed/10:bulk"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:0:cubic:20:fixed/10:bulk"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:-1:cubic:20:fixed/10:bulk"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:1:nosuchcca:20:fixed/10:bulk"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:1:cubic:0:fixed/10:bulk"}),
               std::invalid_argument);
  // Size-spec validation: alpha, bounds ordering, unknown kind.
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:1:cubic:20:pareto/0/4/400:bulk"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:1:cubic:20:pareto/1.2/400/4:bulk"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:1:cubic:20:pareto/1.2/0/4:bulk"}),
               std::invalid_argument);
  EXPECT_THROW(
      parse_cli({"--workload=poisson:10",
                 "--workload-class=w:1:cubic:20:lognormal/5/0/10/100:bulk"}),
      std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:1:cubic:20:zipf/1.1/4/400:bulk"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:1:cubic:20:fixed/0:bulk"}),
               std::invalid_argument);
  // App-spec validation: burst, video interval, unknown model.
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:1:cubic:20:fixed/10:rr/0/5"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:1:cubic:20:fixed/10:video/4/0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:1:cubic:20:fixed/10:ftp/4/5"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10",
                          "--workload-class=w:1:cubic:20:fixed/10:bulk/4"}),
               std::invalid_argument);
  // Mix weights must sum to 1.
  EXPECT_THROW(
      parse_cli({"--workload=poisson:10",
                 "--workload-class=a:0.5:cubic:20:fixed/10:bulk",
                 "--workload-class=b:0.4:cubic:20:fixed/10:bulk"}),
      std::invalid_argument);
  // Admission cap: an explicit 0 is a typo, not "unlimited".
  EXPECT_THROW(parse_cli({"--workload=poisson:10", cls, "--workload-max=0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--workload=poisson:10", cls, "--workload-max=2.5"}),
               std::invalid_argument);
}

TEST(Cli, WorkloadEmpiricalCdfFile) {
  const std::string good = testing::TempDir() + "ccas_cli_cdf_good.txt";
  {
    std::ofstream f(good);
    f << "# cumulative_prob segments\n\n0.5 10\n0.9 100\n1.0 4000\n";
  }
  const CliOptions o = parse_cli(
      {"--workload=poisson:10",
       "--workload-class=w:1:cubic:20:cdf/" + good + ":bulk"});
  const SizeDist& d = o.spec.workload.classes[0].size;
  EXPECT_EQ(d.kind, SizeDistKind::kEmpirical);
  EXPECT_EQ(d.empirical_path, good);
  ASSERT_EQ(d.empirical.size(), 3u);
  EXPECT_DOUBLE_EQ(d.empirical[0].cum_prob, 0.5);
  EXPECT_EQ(d.empirical[2].segments, 4000u);

  // Missing file, non-increasing cum_prob, last != 1, junk tokens.
  EXPECT_THROW(
      parse_cli({"--workload=poisson:10",
                 "--workload-class=w:1:cubic:20:cdf//no/such/file:bulk"}),
      std::invalid_argument);
  const std::string bad = testing::TempDir() + "ccas_cli_cdf_bad.txt";
  for (const char* content :
       {"0.9 10\n0.5 100\n1.0 200\n", "0.5 10\n0.9 100\n", "0.5 ten\n1.0 20\n",
        "0.5 10 extra\n1.0 20\n", ""}) {
    std::ofstream(bad, std::ios::trunc) << content;
    EXPECT_THROW(
        parse_cli({"--workload=poisson:10",
                   "--workload-class=w:1:cubic:20:cdf/" + bad + ":bulk"}),
        std::invalid_argument)
        << "content: " << content;
  }
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

TEST(Cli, WorkloadSpecCliRoundTrip) {
  // Every arrival process, size distribution and app model renders to
  // flags that parse back to the identical canonical spec.
  const std::string cdf = testing::TempDir() + "ccas_cli_cdf_rt.txt";
  std::ofstream(cdf, std::ios::trunc) << "0.25 8\n0.75 80\n1.0 800\n";
  std::vector<std::vector<std::string>> cases = {
      {"--workload=poisson:250",
       "--workload-class=web:0.9:cubic:20:pareto/1.2/4/400:web/8/5",
       "--workload-class=bulk:0.1:bbr:40:lognormal/5.5/1.25/10/10000:bulk"},
      {"--groups=cubic:4:20", "--workload=fixed:100", "--workload-max=500",
       "--workload-class=rr:0.5:newreno:30:fixed/12:rr/4/20",
       "--workload-class=video:0.5:bbr2:60:fixed/64:video/16/40"},
      {"--workload=poisson:33.5",
       "--workload-class=emp:1:cubic:25:cdf/" + cdf + ":bulk"},
  };
  for (const auto& args : cases) {
    const CliOptions original = parse_cli(args);
    const SpecCliRendering rendering = spec_to_cli(original.spec);
    const CliOptions reparsed = parse_cli(rendering.args);
    EXPECT_EQ(sweep::spec_cache_key(original.spec),
              sweep::spec_cache_key(reparsed.spec));
    EXPECT_EQ(sweep::canonical_spec_bytes(original.spec),
              sweep::canonical_spec_bytes(reparsed.spec));
  }
  std::remove(cdf.c_str());
  // A disabled workload renders to no workload flags at all.
  const CliOptions plain = parse_cli({"--groups=cubic:8:20"});
  for (const std::string& arg : spec_to_cli(plain.spec).args) {
    EXPECT_EQ(arg.find("--workload"), std::string::npos) << arg;
  }
  EXPECT_NE(cli_usage().find("--workload"), std::string::npos);
}

TEST(FleetCli, ParsesFlagsAndResolvesDefaults) {
  const FleetCli cli = parse_fleet_cli(
      {"--fleet-dir=/tmp/job", "--lease-ttl=12", "--heartbeat=3",
       "--fleet-wait=60", "--worker-id=host1-w0", "--groups=newreno:2:20",
       "--seeds=1,2,3"});
  EXPECT_EQ(cli.fleet.fleet_dir, "/tmp/job");
  EXPECT_EQ(cli.fleet.lease_ttl_ms, 12'000u);
  EXPECT_EQ(cli.fleet.heartbeat_ms, 3'000u);
  EXPECT_EQ(cli.fleet.wait_ms, 60'000u);
  EXPECT_EQ(cli.fleet.worker_id, "host1-w0");
  EXPECT_FALSE(cli.fleet.report_only);
  EXPECT_EQ(cli.run.seeds.size(), 3u);
  ASSERT_EQ(cli.run.spec.groups.size(), 1u);
  EXPECT_EQ(cli.run.spec.groups[0].cca, "newreno");

  // Defaults: TTL 30s, heartbeat deferred to the worker (TTL/3), wait
  // forever, pid-derived worker id.
  const FleetCli defaults =
      parse_fleet_cli({"--fleet-dir=d", "--groups=newreno:1:20"});
  EXPECT_EQ(defaults.fleet.lease_ttl_ms, 30'000u);
  EXPECT_EQ(defaults.fleet.heartbeat_ms, 0u);
  EXPECT_EQ(defaults.fleet.wait_ms, 0u);
  EXPECT_TRUE(defaults.fleet.worker_id.empty());
}

TEST(FleetCli, RejectsMissingOrMalformedFleetFlags) {
  // --fleet-dir is required (and must carry a value).
  EXPECT_THROW(parse_fleet_cli({"--groups=newreno:1:20"}),
               std::invalid_argument);
  EXPECT_THROW(parse_fleet_cli({"--fleet-dir=", "--groups=newreno:1:20"}),
               std::invalid_argument);
  // Non-positive or to-zero-rounding timing flags.
  for (const char* bad :
       {"--lease-ttl=0", "--lease-ttl=-5", "--lease-ttl=0.0001",
        "--heartbeat=0", "--heartbeat=-1", "--heartbeat=0.0002"}) {
    EXPECT_THROW(
        parse_fleet_cli({"--fleet-dir=d", bad, "--groups=newreno:1:20"}),
        std::invalid_argument)
        << bad;
  }
  EXPECT_THROW(parse_fleet_cli({"--fleet-dir=d", "--fleet-wait=-1",
                                "--groups=newreno:1:20"}),
               std::invalid_argument);
  // A heartbeat that could never renew in time.
  EXPECT_THROW(parse_fleet_cli({"--fleet-dir=d", "--lease-ttl=5",
                                "--heartbeat=5", "--groups=newreno:1:20"}),
               std::invalid_argument);
  EXPECT_THROW(parse_fleet_cli({"--fleet-dir=d", "--lease-ttl=5",
                                "--heartbeat=9", "--groups=newreno:1:20"}),
               std::invalid_argument);
  // Worker ids name lease files and journal fields.
  for (const char* bad : {"--worker-id=a/b", "--worker-id=a b"}) {
    EXPECT_THROW(
        parse_fleet_cli({"--fleet-dir=d", bad, "--groups=newreno:1:20"}),
        std::invalid_argument)
        << bad;
  }
  // --report-only takes no value and no grid flags.
  EXPECT_THROW(parse_fleet_cli({"--fleet-dir=d", "--report-only=yes"}),
               std::invalid_argument);
  EXPECT_THROW(
      parse_fleet_cli({"--fleet-dir=d", "--report-only", "--seed=3"}),
      std::invalid_argument);
  // Bare --report-only is fine.
  EXPECT_TRUE(
      parse_fleet_cli({"--fleet-dir=d", "--report-only"}).fleet.report_only);
}

TEST(FleetCli, RejectsGridFlagsThatCannotDescribeAFleetJob) {
  const std::vector<std::string> base = {"--fleet-dir=d",
                                         "--groups=newreno:1:20"};
  for (const char* bad : {"--trace=0.5", "--csv=out", "--resume=r",
                          "--quarantine=q", "--fail-fast"}) {
    std::vector<std::string> args = base;
    args.emplace_back(bad);
    EXPECT_THROW(parse_fleet_cli(args), std::invalid_argument) << bad;
  }
  // Unknown grid flags surface parse_cli's own rejection.
  EXPECT_THROW(parse_fleet_cli({"--fleet-dir=d", "--no-such-flag=1"}),
               std::invalid_argument);
  EXPECT_NE(fleet_cli_usage().find("--fleet-dir"), std::string::npos);
}

TEST(FleetCli, SpecToCliRoundTripsThroughFleetParsing) {
  // The .repro renderer's output must survive parse_fleet_cli's
  // splitter: fleet flags peel off, the rendered grid flags reproduce
  // the spec hash exactly.
  const CliOptions original = parse_cli(
      {"--setting=edge", "--groups=bbr:2:20,newreno:3:40", "--rate=25",
       "--buffer=200000", "--stagger=0.25", "--warmup=1", "--measure=2",
       "--seed=11", "--qdisc=codel", "--ecn"});
  std::vector<std::string> args = {"--fleet-dir=d", "--lease-ttl=10",
                                   "--worker-id=w7"};
  const SpecCliRendering rendering = spec_to_cli(original.spec);
  args.insert(args.end(), rendering.args.begin(), rendering.args.end());
  const FleetCli cli = parse_fleet_cli(args);
  EXPECT_EQ(sweep::spec_cache_key(cli.run.spec),
            sweep::spec_cache_key(original.spec));
  EXPECT_EQ(cli.fleet.worker_id, "w7");
}

}  // namespace
}  // namespace ccas
