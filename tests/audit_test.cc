#include "src/check/audit.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/check/golden.h"
#include "src/harness/runner.h"
#include "src/sim/simulator.h"

namespace ccas::check {
namespace {

ExperimentSpec small_edge_spec() {
  ExperimentSpec spec;
  spec.scenario = Scenario::edge_scale();
  spec.scenario.stagger = TimeDelta::millis(100);
  spec.scenario.warmup = TimeDelta::millis(300);
  spec.scenario.measure = TimeDelta::millis(500);
  spec.groups.push_back({"cubic", 3, TimeDelta::millis(20)});
  spec.seed = 7;
  return spec;
}

TEST(AuditTest, CheckEnabledFromEnvParsesCommonValues) {
  unsetenv("CCAS_CHECK");
  EXPECT_FALSE(check_enabled_from_env());
  setenv("CCAS_CHECK", "", 1);
  EXPECT_FALSE(check_enabled_from_env());
  setenv("CCAS_CHECK", "0", 1);
  EXPECT_FALSE(check_enabled_from_env());
  setenv("CCAS_CHECK", "1", 1);
  EXPECT_TRUE(check_enabled_from_env());
  setenv("CCAS_CHECK", "yes", 1);
  EXPECT_TRUE(check_enabled_from_env());
  unsetenv("CCAS_CHECK");
}

TEST(AuditTest, AttachesAndDetachesFromSimulator) {
  Simulator sim;
  EXPECT_EQ(sim.auditor(), nullptr);
  {
    InvariantAuditor auditor(sim);
    EXPECT_EQ(sim.auditor(), &auditor);
  }
  EXPECT_EQ(sim.auditor(), nullptr);
}

TEST(AuditTest, FlagsNonMonotoneEventDispatch) {
  Simulator sim;
  InvariantAuditor auditor(sim);
  auditor.on_event_dispatched(Time::zero() + TimeDelta::millis(10), Time::zero() + TimeDelta::millis(10));
  EXPECT_EQ(auditor.total_violations(), 0u);
  auditor.on_event_dispatched(Time::zero() + TimeDelta::millis(10), Time::zero() + TimeDelta::millis(5));
  ASSERT_EQ(auditor.total_violations(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, "event-queue.monotonic-time");
  EXPECT_NE(auditor.report().find("event-queue.monotonic-time"),
            std::string::npos);
}

TEST(AuditTest, FlagsPrrBudgetOverrun) {
  Simulator sim;
  InvariantAuditor auditor(sim);
  // Outside recovery, or with budget, or on the exempt fast retransmit:
  // no violation.
  auditor.on_transmit(3, /*prr_active=*/false, /*prr_budget=*/0, false);
  auditor.on_transmit(3, /*prr_active=*/true, /*prr_budget=*/2, false);
  auditor.on_transmit(3, /*prr_active=*/true, /*prr_budget=*/0, /*prr_exempt=*/true);
  EXPECT_EQ(auditor.total_violations(), 0u);
  auditor.on_transmit(3, /*prr_active=*/true, /*prr_budget=*/0, false);
  ASSERT_EQ(auditor.total_violations(), 1u);
  EXPECT_EQ(auditor.violations()[0].invariant, "prr.budget-exceeded");
  EXPECT_EQ(auditor.violations()[0].flow_id, 3u);
}

TEST(AuditTest, FlagsBackwardDeliveryClock) {
  Simulator sim;
  InvariantAuditor auditor(sim);
  AckEvent ev;
  ev.now = Time::zero() + TimeDelta::millis(50);
  auditor.on_ack_processed(0, ev, /*cwnd=*/10, Time::zero() + TimeDelta::millis(40), 100);
  EXPECT_EQ(auditor.total_violations(), 0u);
  // Delivered count and delivered_time must both be monotone.
  auditor.on_ack_processed(0, ev, /*cwnd=*/10, Time::zero() + TimeDelta::millis(30), 90);
  EXPECT_EQ(auditor.total_violations(), 2u);
  // cwnd of zero is always a violation.
  auditor.on_ack_processed(1, ev, /*cwnd=*/0, Time::zero() + TimeDelta::millis(60), 1);
  EXPECT_EQ(auditor.violations().back().invariant, "cca.cwnd-bounds");
}

TEST(AuditTest, CleanRunAuditsWithoutViolations) {
  ExperimentSpec spec = small_edge_spec();
  spec.audit = true;
  // run_experiment throws on any violation; completing is the assertion.
  const ExperimentResult result = run_experiment(spec);
  EXPECT_GT(result.aggregate_goodput_bps, 0.0);
}

TEST(AuditTest, AuditingDoesNotChangeBehavior) {
  // The auditor must be purely observational: identical golden digests
  // with and without it (this also covers why spec.audit stays out of the
  // canonical spec encoding and the sweep cache key).
  ExperimentSpec bare = small_edge_spec();
  ExperimentSpec audited = small_edge_spec();
  audited.audit = true;
  const ExperimentResult r1 = run_experiment(bare);
  const ExperimentResult r2 = run_experiment(audited);
  EXPECT_EQ(golden_digest(bare, r1), golden_digest(bare, r2));
  EXPECT_EQ(r1.sim_events, r2.sim_events);
}

TEST(AuditTest, EnvToggleForcesAuditOn) {
  setenv("CCAS_CHECK", "1", 1);
  ExperimentSpec spec = small_edge_spec();  // spec.audit stays false
  const ExperimentResult result = run_experiment(spec);
  unsetenv("CCAS_CHECK");
  EXPECT_GT(result.aggregate_goodput_bps, 0.0);
}

}  // namespace
}  // namespace ccas::check
