// Failure-injection stress tests: every CCA driven through a channel with
// i.i.d. random loss at rates from 0.1% to 20%. Invariants checked:
// the connection always makes forward progress, recovers to a contiguous
// receive stream once loss stops, and never violates pipe accounting.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/cca/cca.h"
#include "src/net/delay_line.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"
#include "src/util/rng.h"

namespace ccas {
namespace {

class RandomLossChannel : public PacketSink {
 public:
  RandomLossChannel(PacketSink* dest, double loss_rate, uint64_t seed)
      : dest_(dest), loss_rate_(loss_rate), rng_(seed) {}

  void set_loss_rate(double p) { loss_rate_ = p; }

  void accept(Packet&& pkt) override {
    if (pkt.type == PacketType::kData && rng_.next_double() < loss_rate_) {
      ++dropped_;
      return;
    }
    dest_->accept(std::move(pkt));
  }

  [[nodiscard]] uint64_t dropped() const { return dropped_; }

 private:
  PacketSink* dest_;
  double loss_rate_;
  Rng rng_;
  uint64_t dropped_ = 0;
};

class Hook : public PacketSink {
 public:
  void accept(Packet&& pkt) override { target_->accept(std::move(pkt)); }
  void set_target(PacketSink* t) { target_ = t; }

 private:
  PacketSink* target_ = nullptr;
};

class RandomLossStress
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(RandomLossStress, SurvivesAndRecovers) {
  const char* cca_name = std::get<0>(GetParam());
  const double loss = std::get<1>(GetParam()) / 1000.0;

  Simulator sim;
  Hook to_sender;
  DelayLine rev(sim, TimeDelta::millis(10), &to_sender);
  TcpReceiver rcv(sim, 0, &rev);
  DelayLine fwd(sim, TimeDelta::millis(10), &rcv);
  RandomLossChannel channel(&fwd, loss, /*seed=*/1234);
  TcpSenderConfig cfg;
  cfg.max_window = 512;  // delay-only path: bound the window
  Rng rng(7);
  TcpSender snd(sim, 0, make_cca(cca_name, rng), &channel, cfg);
  to_sender.set_target(&snd);

  snd.start();
  // Phase 1: 30 s under loss. Must keep making progress.
  uint64_t last_rcv = 0;
  for (int chunk = 0; chunk < 6; ++chunk) {
    sim.run_until(sim.now() + TimeDelta::seconds(5));
    EXPECT_GT(rcv.rcv_nxt(), last_rcv)
        << cca_name << " stalled at loss " << loss << ", chunk " << chunk;
    last_rcv = rcv.rcv_nxt();
    EXPECT_LE(snd.inflight(), 512u + 2);
  }
  EXPECT_GT(channel.dropped(), 0u);

  // Phase 2: loss stops; the stream must become contiguous and fast.
  channel.set_loss_rate(0.0);
  sim.run_until(sim.now() + TimeDelta::seconds(10));
  EXPECT_EQ(rcv.out_of_order_ranges(), 0u) << cca_name;
  const uint64_t before = rcv.rcv_nxt();
  sim.run_until(sim.now() + TimeDelta::seconds(2));
  EXPECT_GT(rcv.rcv_nxt(), before + 100) << cca_name;
  // Sender and receiver agree on what was delivered (up to in-flight ACKs).
  EXPECT_LE(snd.stats().delivered, rcv.rcv_nxt());
}

INSTANTIATE_TEST_SUITE_P(
    CcasAndLossRates, RandomLossStress,
    ::testing::Combine(::testing::Values("newreno", "cubic", "bbr", "bbr2",
                                         "vegas"),
                       ::testing::Values(1, 10, 50, 200)),
    [](const ::testing::TestParamInfo<RandomLossStress::ParamType>& info) {
      return std::string(std::get<0>(info.param)) + "_loss" +
             std::to_string(std::get<1>(info.param)) + "permille";
    });

}  // namespace
}  // namespace ccas
