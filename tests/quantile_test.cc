// Streaming quantile sketch (Greenwald-Khanna) against an exact sorted
// reference: the epsilon-rank guarantee must hold on adversarial input
// orders (sorted, reversed, duplicate-heavy, heavy-tailed) and survive
// merging per-shard sketches into one.
#include "src/stats/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/stats/fct.h"
#include "src/util/rng.h"

namespace ccas {
namespace {

// Exact quantile by nearest-rank on a sorted copy.
double exact_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  if (v.empty()) return std::nan("");
  const size_t rank =
      std::min(v.size() - 1,
               static_cast<size_t>(std::ceil(q * static_cast<double>(v.size()))) -
                   (q > 0.0 ? 1 : 0));
  return v[rank];
}

// The GK guarantee is on *rank*, not value: the sketch's answer for q must
// be a sample whose true rank is within eps*n of q*n.
void expect_within_rank_eps(const std::vector<double>& data,
                            const QuantileSketch& sk, double q, double eps) {
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const double got = sk.quantile(q);
  // Position range of `got` in the sorted data (duplicates span a range).
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), got);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), got);
  ASSERT_NE(lo, hi) << "sketch returned a value not in the data: " << got;
  const double n = static_cast<double>(sorted.size());
  const double target = q * n;
  const double rank_lo = static_cast<double>(lo - sorted.begin()) + 1.0;
  const double rank_hi = static_cast<double>(hi - sorted.begin());
  // Practical-bound slack: merge composes error terms, and the textbook
  // bound has an additive constant; 2*eps*n + 1 covers both.
  const double slack = 2.0 * eps * n + 1.0;
  EXPECT_LE(rank_lo - slack, target) << "q=" << q << " got=" << got;
  EXPECT_GE(rank_hi + slack, target) << "q=" << q << " got=" << got;
}

TEST(Quantile, RejectsBadEpsilon) {
  EXPECT_THROW(QuantileSketch(0.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(-0.1), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(0.5), std::invalid_argument);
  EXPECT_NO_THROW(QuantileSketch(0.001));
}

TEST(Quantile, EmptyAndSingleton) {
  QuantileSketch sk(0.01);
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_TRUE(std::isnan(sk.quantile(0.5)));
  sk.insert(42.0);
  EXPECT_EQ(sk.count(), 1u);
  EXPECT_DOUBLE_EQ(sk.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(sk.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(sk.quantile(1.0), 42.0);
}

TEST(Quantile, ExtremesAreExact) {
  QuantileSketch sk(0.01);
  Rng rng(7);
  double mn = 1e300;
  double mx = -1e300;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.next_double() * 1000.0;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    sk.insert(v);
  }
  EXPECT_DOUBLE_EQ(sk.quantile(0.0), mn);
  EXPECT_DOUBLE_EQ(sk.quantile(1.0), mx);
}

class QuantileAdversarial : public ::testing::TestWithParam<const char*> {};

// Deterministic per-kind seed (no std::hash: its value is unspecified).
uint64_t fnv_seed(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  return h;
}

std::vector<double> make_sequence(const std::string& kind, size_t n) {
  std::vector<double> v;
  v.reserve(n);
  Rng rng(fnv_seed(kind));
  if (kind == "sorted") {
    for (size_t i = 0; i < n; ++i) v.push_back(static_cast<double>(i));
  } else if (kind == "reversed") {
    for (size_t i = 0; i < n; ++i) v.push_back(static_cast<double>(n - i));
  } else if (kind == "duplicate-heavy") {
    // 90% of mass on 8 distinct values.
    for (size_t i = 0; i < n; ++i) {
      const double u = rng.next_double();
      v.push_back(u < 0.9 ? std::floor(u * 8.888889) : u * 1e4);
    }
  } else if (kind == "heavy-tailed") {
    // Bounded Pareto alpha=1.1: the P999 lives far from the median.
    for (size_t i = 0; i < n; ++i) {
      const double u = rng.next_double();
      v.push_back(1.0 / std::pow(1.0 - u * (1.0 - std::pow(1e-6, 1.1)), 1.0 / 1.1));
    }
  } else {
    for (size_t i = 0; i < n; ++i) v.push_back(rng.next_double());
  }
  return v;
}

TEST_P(QuantileAdversarial, RankGuaranteeHolds) {
  const std::string kind = GetParam();
  for (const double eps : {0.001, 0.01}) {
    const std::vector<double> data = make_sequence(kind, 60000);
    QuantileSketch sk(eps);
    for (const double v : data) sk.insert(v);
    EXPECT_EQ(sk.count(), data.size());
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      expect_within_rank_eps(data, sk, q, eps);
    }
    // The sketch must stay sublinear: that's its entire reason to exist.
    EXPECT_LT(sk.tuple_count(), data.size() / 10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sequences, QuantileAdversarial,
                         ::testing::Values("sorted", "reversed",
                                           "duplicate-heavy", "heavy-tailed",
                                           "uniform"));

TEST(Quantile, MergeMatchesSingleSketchGuarantee) {
  // Sharded accumulation: S shards each sketch a disjoint slice, the
  // merged sketch must satisfy the (practical) rank bound on the union.
  for (const int shards : {2, 4, 8}) {
    const std::vector<double> data = make_sequence("heavy-tailed", 48000);
    const double eps = 0.005;
    QuantileSketch merged(eps);
    for (int s = 0; s < shards; ++s) {
      QuantileSketch part(eps);
      for (size_t i = s; i < data.size(); i += static_cast<size_t>(shards)) {
        part.insert(data[i]);
      }
      merged.merge(part);
    }
    EXPECT_EQ(merged.count(), data.size());
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      expect_within_rank_eps(data, merged, q, eps);
    }
  }
}

TEST(Quantile, MergeIntoEmptyAndOfEmpty) {
  QuantileSketch a(0.01);
  QuantileSketch b(0.01);
  for (int i = 0; i < 1000; ++i) b.insert(static_cast<double>(i));
  a.merge(b);  // empty <- full: plain copy
  EXPECT_EQ(a.count(), 1000u);
  QuantileSketch empty(0.01);
  a.merge(empty);  // full <- empty: no-op
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 999.0);
}

TEST(FctRecorder, MergeMatchesSingleRecorder) {
  // Sharded workload accumulation path: two per-shard recorders merged
  // must summarize like one recorder that saw every completion.
  FctRecorder whole;
  FctRecorder left;
  FctRecorder right;
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    const double fct = 0.01 + rng.next_double() * 0.5;
    FctRecorder& shard = (i % 2 == 0) ? left : right;
    whole.on_arrival();
    shard.on_arrival();
    if (i % 17 == 0) {
      whole.on_reject();
      shard.on_reject();
      continue;
    }
    whole.on_complete(fct, 0.01, 12);
    shard.on_complete(fct, 0.01, 12);
  }
  left.merge(right);
  const WorkloadClassResult a = whole.summarize("web", "cubic");
  const WorkloadClassResult b = left.summarize("web", "cubic");
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.completed_segments, b.completed_segments);
  // Means agree up to summation order (the shards accumulate their own
  // partial sums before the merge adds them).
  EXPECT_NEAR(a.mean_fct_s, b.mean_fct_s, 1e-12);
  EXPECT_NEAR(a.mean_slowdown, b.mean_slowdown, 1e-9);
  // Quantiles from the merged sketch obey the (composed) rank guarantee,
  // so they must sit within a hair of the single-recorder answers.
  EXPECT_NEAR(a.p50_fct_s, b.p50_fct_s, 0.01);
  EXPECT_NEAR(a.p99_fct_s, b.p99_fct_s, 0.01);
}

TEST(FctRecorder, EmptySummarizeLeavesQuantilesZero) {
  FctRecorder r;
  r.on_arrival();
  r.on_abandon();
  const WorkloadClassResult out = r.summarize("idle", "bbr");
  EXPECT_EQ(out.arrivals, 1u);
  EXPECT_EQ(out.abandoned, 1u);
  EXPECT_EQ(out.completed, 0u);
  EXPECT_DOUBLE_EQ(out.p50_fct_s, 0.0);
  EXPECT_DOUBLE_EQ(out.mean_slowdown, 0.0);
}

TEST(Quantile, MedianTracksExactOnUniform) {
  // Value-space sanity on top of the rank bound: for uniform data the
  // returned quantile values should be numerically close to exact ones.
  const std::vector<double> data = make_sequence("uniform", 100000);
  QuantileSketch sk(0.001);
  for (const double v : data) sk.insert(v);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_NEAR(sk.quantile(q), exact_quantile(data, q), 0.01) << q;
  }
}

}  // namespace
}  // namespace ccas
