#include "src/cca/vegas.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace ccas {
namespace {

// Drives Vegas with synthetic per-round ACKs at a given RTT. `inflight`
// approximates one window outstanding so packet-timed rounds advance.
struct VegasDriver {
  explicit VegasDriver(VegasConfig cfg = {}) : vegas(cfg) {}

  void round(TimeDelta rtt, int acks_in_round = 1) {
    for (int i = 0; i < acks_in_round; ++i) {
      now = now + TimeDelta::nanos(rtt.ns() / acks_in_round);
      AckEvent ev;
      ev.now = now;
      ev.newly_acked = vegas.cwnd() / static_cast<uint64_t>(acks_in_round) + 1;
      delivered += ev.newly_acked;
      ev.delivered_total = delivered;
      // Keep inflight tiny so every driver call is a packet-timed round
      // boundary (the sender-side round bookkeeping is tested elsewhere).
      ev.inflight = 1;
      ev.rtt_sample = rtt;
      ev.min_rtt = rtt;
      vegas.on_ack(ev);
    }
  }

  Vegas vegas;
  Time now = Time::zero();
  uint64_t delivered = 0;
};

TEST(Vegas, StartsInSlowStart) {
  Vegas v;
  EXPECT_EQ(v.cwnd(), 10u);
  EXPECT_TRUE(v.in_slow_start());
  EXPECT_EQ(v.name(), "vegas");
  EXPECT_TRUE(v.pacing_rate().is_infinite());
}

TEST(Vegas, TracksBaseRtt) {
  VegasDriver d;
  d.round(TimeDelta::millis(30));
  d.round(TimeDelta::millis(20));
  d.round(TimeDelta::millis(40));
  EXPECT_EQ(d.vegas.base_rtt(), TimeDelta::millis(20));
}

TEST(Vegas, SlowStartExitsWhenQueueBuilds) {
  VegasDriver d;
  // Constant base RTT: no self-queueing detected, window doubles (every
  // other round).
  for (int i = 0; i < 6; ++i) d.round(TimeDelta::millis(20));
  EXPECT_GT(d.vegas.cwnd(), 10u);
  EXPECT_TRUE(d.vegas.in_slow_start());
  const uint64_t cwnd_at_exit = d.vegas.cwnd();
  // RTT inflated by 50%: diff = cwnd*(1 - base/rtt) >> alpha -> exit.
  d.round(TimeDelta::millis(30));
  d.round(TimeDelta::millis(30));
  EXPECT_FALSE(d.vegas.in_slow_start());
  EXPECT_LE(d.vegas.cwnd(), cwnd_at_exit);
}

TEST(Vegas, HoldsWindowInsideAlphaBetaBand) {
  VegasDriver d;
  for (int i = 0; i < 8; ++i) d.round(TimeDelta::millis(20));
  // Leave slow start via a mild inflation, then find the band.
  for (int i = 0; i < 50; ++i) {
    // RTT such that diff = cwnd * (1 - 20/rtt_ms*...) ~ 3 segments: pick
    // rtt so self-queue ~3: rtt = base * cwnd/(cwnd-3).
    const double cwnd = static_cast<double>(d.vegas.cwnd());
    const double rtt_ms = 20.0 * cwnd / std::max(cwnd - 3.0, 1.0);
    d.round(TimeDelta::nanos(static_cast<int64_t>(rtt_ms * 1e6)));
  }
  // diff ~= 3 lies inside (alpha=2, beta=4): the window must be stable.
  const uint64_t w = d.vegas.cwnd();
  const double cwnd = static_cast<double>(w);
  const double rtt_ms = 20.0 * cwnd / (cwnd - 3.0);
  d.round(TimeDelta::nanos(static_cast<int64_t>(rtt_ms * 1e6)));
  d.round(TimeDelta::nanos(static_cast<int64_t>(rtt_ms * 1e6)));
  EXPECT_NEAR(static_cast<double>(d.vegas.cwnd()), static_cast<double>(w), 1.0);
}

TEST(Vegas, BacksOffWhenQueueExceedsBeta) {
  VegasDriver d;
  for (int i = 0; i < 8; ++i) d.round(TimeDelta::millis(20));
  d.round(TimeDelta::millis(35));  // exit slow start
  const uint64_t before = d.vegas.cwnd();
  // Heavy self-queueing: diff >> beta, decrease one per round.
  for (int i = 0; i < 5; ++i) d.round(TimeDelta::millis(60));
  EXPECT_LT(d.vegas.cwnd(), before);
}

TEST(Vegas, GrowsWhenBelowAlpha) {
  VegasDriver d;
  for (int i = 0; i < 8; ++i) d.round(TimeDelta::millis(20));
  d.round(TimeDelta::millis(35));
  const uint64_t before = d.vegas.cwnd();
  // Back at base RTT: diff ~ 0 < alpha, grow one per round.
  for (int i = 0; i < 5; ++i) d.round(TimeDelta::millis(20));
  EXPECT_GT(d.vegas.cwnd(), before);
}

TEST(Vegas, LossFallbackIsRenoLike) {
  VegasDriver d;
  for (int i = 0; i < 10; ++i) d.round(TimeDelta::millis(20));
  const uint64_t before = d.vegas.cwnd();
  d.vegas.on_congestion_event(d.now, before);
  EXPECT_EQ(d.vegas.cwnd(), std::max<uint64_t>(before / 2, 2));
  d.vegas.on_rto(d.now);
  EXPECT_EQ(d.vegas.cwnd(), 1u);
}

TEST(Vegas, RegisteredInRegistry) {
  Rng rng(1);
  auto cca = make_cca("vegas", rng);
  EXPECT_EQ(cca->name(), "vegas");
}

}  // namespace
}  // namespace ccas
