#include "src/util/units.h"

#include <gtest/gtest.h>

namespace ccas {
namespace {

TEST(TimeDelta, Constructors) {
  EXPECT_EQ(TimeDelta::nanos(5).ns(), 5);
  EXPECT_EQ(TimeDelta::micros(5).ns(), 5'000);
  EXPECT_EQ(TimeDelta::millis(5).ns(), 5'000'000);
  EXPECT_EQ(TimeDelta::seconds(5).ns(), 5'000'000'000);
  EXPECT_EQ(TimeDelta::seconds_f(0.5).ns(), 500'000'000);
  EXPECT_TRUE(TimeDelta::zero().is_zero());
  EXPECT_TRUE(TimeDelta::infinite().is_infinite());
}

TEST(TimeDelta, Arithmetic) {
  const TimeDelta a = TimeDelta::millis(10);
  const TimeDelta b = TimeDelta::millis(4);
  EXPECT_EQ((a + b).ms(), 14.0);
  EXPECT_EQ((a - b).ms(), 6.0);
  EXPECT_EQ((a * 3).ms(), 30.0);
  EXPECT_EQ((a * 0.5).ms(), 5.0);
  EXPECT_EQ((a / 2).ms(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  TimeDelta c = a;
  c += b;
  EXPECT_EQ(c.ms(), 14.0);
  c -= b;
  EXPECT_EQ(c.ms(), 10.0);
}

TEST(TimeDelta, Comparisons) {
  EXPECT_LT(TimeDelta::millis(1), TimeDelta::millis(2));
  EXPECT_EQ(TimeDelta::millis(1), TimeDelta::micros(1000));
  EXPECT_GT(TimeDelta::infinite(), TimeDelta::seconds(100000));
}

TEST(TimeDelta, Conversions) {
  EXPECT_DOUBLE_EQ(TimeDelta::millis(1500).sec(), 1.5);
  EXPECT_DOUBLE_EQ(TimeDelta::micros(1500).ms(), 1.5);
  EXPECT_DOUBLE_EQ(TimeDelta::nanos(1500).us(), 1.5);
}

TEST(TimeDelta, ToString) {
  EXPECT_EQ(TimeDelta::seconds(2).to_string(), "2.000s");
  EXPECT_EQ(TimeDelta::millis(3).to_string(), "3.000ms");
  EXPECT_EQ(TimeDelta::micros(7).to_string(), "7.000us");
  EXPECT_EQ(TimeDelta::nanos(9).to_string(), "9ns");
  EXPECT_EQ(TimeDelta::infinite().to_string(), "+inf");
}

TEST(Time, Arithmetic) {
  const Time t = Time::zero() + TimeDelta::seconds(3);
  EXPECT_EQ(t.ns(), 3'000'000'000);
  EXPECT_EQ((t - Time::zero()).sec(), 3.0);
  EXPECT_EQ((t + TimeDelta::seconds(2)).sec(), 5.0);
  EXPECT_EQ((t - TimeDelta::seconds(1)).sec(), 2.0);
  EXPECT_LT(Time::zero(), t);
  EXPECT_TRUE(Time::infinite().is_infinite());
}

TEST(DataRate, Constructors) {
  EXPECT_EQ(DataRate::bps(1).bits_per_sec(), 1);
  EXPECT_EQ(DataRate::kbps(1).bits_per_sec(), 1'000);
  EXPECT_EQ(DataRate::mbps(1).bits_per_sec(), 1'000'000);
  EXPECT_EQ(DataRate::gbps(1).bits_per_sec(), 1'000'000'000);
  EXPECT_TRUE(DataRate::zero().is_zero());
  EXPECT_TRUE(DataRate::infinite().is_infinite());
}

TEST(DataRate, TransferTime) {
  // 1500 bytes at 100 Mbps = 120 us.
  EXPECT_EQ(DataRate::mbps(100).transfer_time(1500), TimeDelta::micros(120));
  // 1500 bytes at 10 Gbps = 1.2 us.
  EXPECT_EQ(DataRate::gbps(10).transfer_time(1500), TimeDelta::nanos(1200));
  EXPECT_EQ(DataRate::infinite().transfer_time(1'000'000), TimeDelta::zero());
}

TEST(DataRate, BytesIn) {
  EXPECT_EQ(DataRate::mbps(8).bytes_in(TimeDelta::seconds(1)), 1'000'000);
  EXPECT_EQ(DataRate::mbps(100).bytes_in(TimeDelta::millis(200)), 2'500'000);
}

TEST(DataRate, BytesPer) {
  // 1 MB in 1 second = 8 Mbps.
  EXPECT_EQ(DataRate::bytes_per(1'000'000, TimeDelta::seconds(1)).bits_per_sec(),
            8'000'000);
  EXPECT_TRUE(DataRate::bytes_per(1, TimeDelta::zero()).is_infinite());
}

TEST(DataRate, Arithmetic) {
  const DataRate r = DataRate::mbps(100);
  EXPECT_EQ((r * 0.5).bits_per_sec(), 50'000'000);
  EXPECT_EQ((r / 4).bits_per_sec(), 25'000'000);
  EXPECT_EQ((r + r).bits_per_sec(), 200'000'000);
  EXPECT_EQ((r - r / 2).bits_per_sec(), 50'000'000);
  EXPECT_DOUBLE_EQ(r / DataRate::mbps(50), 2.0);
}

TEST(Bdp, MatchesPaperNumbers) {
  // 10 Gbps * 200 ms = 250 MB: the basis for the paper's 375 MB CoreScale
  // buffer; 100 Mbps * 200 ms = 2.5 MB for the 3 MB EdgeScale buffer.
  EXPECT_EQ(bdp_bytes(DataRate::gbps(10), TimeDelta::millis(200)), 250'000'000);
  EXPECT_EQ(bdp_bytes(DataRate::mbps(100), TimeDelta::millis(200)), 2'500'000);
}

class DataRateRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(DataRateRoundTrip, TransferTimeAndBytesInAreConsistent) {
  const DataRate rate = DataRate::bps(GetParam());
  const TimeDelta t = rate.transfer_time(1500);
  // Transferring for exactly the serialization time moves ~1500 bytes.
  EXPECT_NEAR(static_cast<double>(rate.bytes_in(t)), 1500.0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, DataRateRoundTrip,
                         ::testing::Values(1'000'000, 10'000'000, 100'000'000,
                                           1'000'000'000, 10'000'000'000,
                                           25'000'000'000));

}  // namespace
}  // namespace ccas
