// Cross-module integration tests: whole-stack behaviours the paper's
// methodology relies on, run at reduced (fast) scale.
#include <gtest/gtest.h>

#include <cmath>

#include "src/harness/runner.h"
#include "src/stats/burstiness.h"
#include "src/stats/mathis_fit.h"

namespace ccas {
namespace {

ExperimentSpec base_spec(DataRate rate, int64_t buffer, TimeDelta measure) {
  ExperimentSpec spec;
  spec.scenario.net.bottleneck_rate = rate;
  spec.scenario.net.buffer_bytes = buffer;
  spec.scenario.stagger = TimeDelta::millis(500);
  spec.scenario.warmup = TimeDelta::seconds(3);
  spec.scenario.measure = measure;
  spec.seed = 1234;
  return spec;
}

TEST(Integration, SingleNewRenoFlowSaturatesLink) {
  ExperimentSpec spec =
      base_spec(DataRate::mbps(50), 1'500'000, TimeDelta::seconds(10));
  spec.groups.push_back(FlowGroup{"newreno", 1, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  EXPECT_GT(r.utilization, 0.95);
}

TEST(Integration, SingleCubicFlowSaturatesLink) {
  ExperimentSpec spec =
      base_spec(DataRate::mbps(50), 1'500'000, TimeDelta::seconds(10));
  spec.groups.push_back(FlowGroup{"cubic", 1, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  EXPECT_GT(r.utilization, 0.95);
}

TEST(Integration, SingleBbrFlowSaturatesLinkWithLowLoss) {
  ExperimentSpec spec =
      base_spec(DataRate::mbps(50), 1'500'000, TimeDelta::seconds(10));
  spec.groups.push_back(FlowGroup{"bbr", 1, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  EXPECT_GT(r.utilization, 0.9);
  // A lone BBR flow paces at the link rate: essentially no drops.
  EXPECT_LT(static_cast<double>(r.queue.dropped_packets), 100.0);
}

TEST(Integration, TwoNewRenoFlowsShareFairly) {
  // The AIMD sawtooth period at this BDP+buffer is ~90 s; measure over
  // several periods so the time-averaged shares converge (the same reason
  // the paper runs for hours).
  ExperimentSpec spec =
      base_spec(DataRate::mbps(50), 1'500'000, TimeDelta::seconds(300));
  spec.scenario.warmup = TimeDelta::seconds(30);
  spec.groups.push_back(FlowGroup{"newreno", 2, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  EXPECT_GT(r.jfi_all(), 0.85);
  EXPECT_GT(r.utilization, 0.95);
}

TEST(Integration, CubicBeatsNewRenoButDoesNotStarveIt) {
  ExperimentSpec spec =
      base_spec(DataRate::mbps(50), 1'500'000, TimeDelta::seconds(60));
  spec.groups.push_back(FlowGroup{"cubic", 3, TimeDelta::millis(20)});
  spec.groups.push_back(FlowGroup{"newreno", 3, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  EXPECT_GT(r.groups[0].throughput_share, 0.55);  // cubic wins...
  EXPECT_GT(r.groups[1].throughput_share, 0.05);  // ...but reno survives
}

TEST(Integration, BbrTakesLargeShareAgainstManyNewReno) {
  ExperimentSpec spec =
      base_spec(DataRate::mbps(100), 3'000'000, TimeDelta::seconds(60));
  spec.scenario.warmup = TimeDelta::seconds(20);
  spec.groups.push_back(FlowGroup{"bbr", 1, TimeDelta::millis(20)});
  spec.groups.push_back(FlowGroup{"newreno", 16, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  // Ware et al. / paper Fig 6: a single BBR flow holds a large share that
  // sixteen competitors cannot reclaim (40% measured on real kernels; our
  // stack lands in the same regime).
  EXPECT_GT(r.groups[0].throughput_share, 0.15);
  EXPECT_LT(r.groups[0].throughput_share, 0.9);
}

TEST(Integration, MathisHoldsPerFlowWithHalvingRate) {
  // 10 reno flows at modest scale: fitting C on (goodput, halving rate)
  // per flow must give a decent fit — the paper's Finding 2 mechanism.
  ExperimentSpec spec =
      base_spec(DataRate::mbps(100), 3'000'000, TimeDelta::seconds(120));
  spec.scenario.warmup = TimeDelta::seconds(30);
  spec.groups.push_back(FlowGroup{"newreno", 10, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  std::vector<MathisObservation> obs;
  for (const auto& f : r.flows) {
    // The model is evaluated against the RTT each flow experienced
    // (including queueing delay), as measured by the sender — the drop-tail
    // queue holds a standing queue far above the 20 ms base RTT here.
    EXPECT_GT(f.mean_rtt, TimeDelta::millis(20));
    obs.push_back(
        MathisObservation{f.goodput_bps, f.cwnd_halving_rate, f.mean_rtt});
  }
  const MathisFit fit = fit_mathis_constant(obs, kMssBytes);
  ASSERT_GE(fit.flows_used, 8u);
  EXPECT_GT(fit.c, 0.4);
  EXPECT_LT(fit.c, 3.0);
  EXPECT_LT(fit.median_error, 0.35);
}

TEST(Integration, DropLogSupportsBurstinessAnalysis) {
  ExperimentSpec spec =
      base_spec(DataRate::mbps(100), 1'000'000, TimeDelta::seconds(60));
  spec.groups.push_back(FlowGroup{"newreno", 20, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  ASSERT_GE(r.drop_times.size(), 10u);
  const double b = goh_barabasi_burstiness_from_times(r.drop_times);
  EXPECT_GE(b, -1.0);
  EXPECT_LE(b, 1.0);
}

TEST(Integration, HigherRttMeansLowerThroughputPerFlow) {
  // Two groups at different RTTs: classic RTT unfairness of loss-based CCAs.
  ExperimentSpec spec =
      base_spec(DataRate::mbps(50), 1'250'000, TimeDelta::seconds(60));
  spec.groups.push_back(FlowGroup{"newreno", 3, TimeDelta::millis(10)});
  spec.groups.push_back(FlowGroup{"newreno", 3, TimeDelta::millis(80)});
  const ExperimentResult r = run_experiment(spec);
  EXPECT_GT(r.groups[0].aggregate_goodput_bps, r.groups[1].aggregate_goodput_bps);
}

TEST(Integration, PacketConservationNoSpuriousLoss) {
  // With a buffer far larger than the aggregate demand there must be no
  // drops, no retransmits, and no congestion events at all.
  ExperimentSpec spec =
      base_spec(DataRate::mbps(10), 50'000'000, TimeDelta::seconds(10));
  spec.tcp.max_window = 64;  // keep flows window-limited below the pipe
  spec.groups.push_back(FlowGroup{"newreno", 4, TimeDelta::millis(50)});
  const ExperimentResult r = run_experiment(spec);
  EXPECT_EQ(r.queue.dropped_packets, 0u);
  for (const auto& f : r.flows) {
    EXPECT_EQ(f.queue_drops, 0u);
    EXPECT_EQ(f.congestion_events, 0u);
    EXPECT_EQ(f.rto_events, 0u);
  }
}

TEST(Integration, PerFlowMetricsAreSane) {
  ExperimentSpec spec =
      base_spec(DataRate::mbps(50), 500'000, TimeDelta::seconds(20));
  spec.groups.push_back(FlowGroup{"cubic", 5, TimeDelta::millis(20)});
  spec.groups.push_back(FlowGroup{"bbr", 1, TimeDelta::millis(20)});
  const ExperimentResult r = run_experiment(spec);
  const double link_bps =
      static_cast<double>(spec.scenario.net.bottleneck_rate.bits_per_sec());
  for (const auto& f : r.flows) {
    EXPECT_LE(f.goodput_bps, link_bps);
    EXPECT_GE(f.packet_loss_rate, 0.0);
    EXPECT_LE(f.packet_loss_rate, 1.0);
    EXPECT_GE(f.cwnd_halving_rate, 0.0);
    EXPECT_LE(f.cwnd_halving_rate, 1.0);
    // Windowed counters: deliveries can exceed sends by at most the data
    // that was in flight at the window boundary.
    EXPECT_LE(f.delivered, f.segments_sent + spec.tcp.max_window);
    EXPECT_GE(f.mean_rtt, TimeDelta::millis(20));
  }
}

// The same-seed determinism property must hold for every CCA (pacing,
// timers, and random ProbeBW phases included).
class DeterminismByCca : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismByCca, SameSeedSameResult) {
  auto make = [&] {
    ExperimentSpec spec =
        base_spec(DataRate::mbps(30), 500'000, TimeDelta::seconds(8));
    spec.groups.push_back(FlowGroup{GetParam(), 3, TimeDelta::millis(20)});
    return spec;
  };
  const ExperimentResult a = run_experiment(make());
  const ExperimentResult b = run_experiment(make());
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].segments_sent, b.flows[i].segments_sent);
    EXPECT_DOUBLE_EQ(a.flows[i].goodput_bps, b.flows[i].goodput_bps);
  }
  EXPECT_EQ(a.sim_events, b.sim_events);
}

INSTANTIATE_TEST_SUITE_P(Ccas, DeterminismByCca,
                         ::testing::Values("newreno", "cubic", "bbr"));

}  // namespace
}  // namespace ccas
