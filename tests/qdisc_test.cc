// Unit tests for the pluggable qdisc subsystem: config validation, the
// shared QueueDisc accounting contract, and each scheduler's policy
// (CoDel sojourn control, FQ-CoDel DRR + fattest-flow eviction, PIE's PI
// controller, RED's EWMA ladder) including ECN mark-instead-of-drop.
#include "src/net/qdisc/qdisc.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/net/impairment.h"
#include "src/net/link.h"
#include "src/net/qdisc/codel.h"
#include "src/net/qdisc/fq_codel.h"
#include "src/net/qdisc/pie.h"
#include "src/net/qdisc/red.h"
#include "src/net/queue.h"
#include "src/net/topology.h"

namespace ccas {
namespace {

class CollectorSink : public PacketSink {
 public:
  explicit CollectorSink(Simulator& sim) : sim_(sim) {}
  void accept(Packet&& pkt) override {
    packets.push_back(pkt);
    arrival_times.push_back(sim_.now());
  }
  std::vector<Packet> packets;
  std::vector<Time> arrival_times;

 private:
  Simulator& sim_;
};

Packet data_packet(uint32_t flow, uint64_t seq, bool ect = false) {
  Packet p = Packet::make_data(flow, DumbbellTopology::kToReceivers, seq, false);
  if (ect) p.ecn = kEcnEct;
  return p;
}

// A qdisc wired to a draining link, as in the topology.
struct QdiscFixture {
  QdiscFixture(QdiscConfig config, DataRate rate, int64_t buffer_bytes)
      : sink(sim),
        queue(make_qdisc(sim, config, buffer_bytes)),
        link(sim, rate, &sink) {
    queue->set_downstream(&link);
    link.set_source(queue.get());
  }
  Simulator sim;
  CollectorSink sink;
  std::unique_ptr<QueueDisc> queue;
  Link link;
};

QdiscConfig config_of(QdiscKind kind, bool ecn = false) {
  QdiscConfig c;
  c.kind = kind;
  c.ecn = ecn;
  c.seed = 7;
  return c;
}

// Offered load above the link rate for `duration`: one packet every
// `spacing` from `flows` round-robin flows, ECT as requested.
void offer_load(QdiscFixture& f, TimeDelta spacing, TimeDelta duration,
                uint32_t flows, bool ect) {
  uint64_t seq = 0;
  for (Time t = Time::zero(); t < Time::zero() + duration;
       t = t + spacing, ++seq) {
    const uint32_t flow = static_cast<uint32_t>(seq % flows);
    f.sim.schedule_fn_at(t, [&f, flow, seq, ect] {
      f.queue->accept(data_packet(flow, seq, ect));
    });
  }
  f.sim.run_until(Time::zero() + duration + TimeDelta::seconds(2));
}

// ------------------------------------------------------------- config ----

TEST(QdiscConfig, ValidatesPerKind) {
  QdiscConfig c;
  EXPECT_NO_THROW(c.validate());  // drop-tail defaults
  EXPECT_FALSE(c.enabled());

  c.ecn = true;  // ECN needs an AQM
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = config_of(QdiscKind::kCoDel);
  EXPECT_TRUE(c.enabled());
  EXPECT_NO_THROW(c.validate());
  c.codel_target = c.codel_interval;  // target must stay below interval
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.codel_target = TimeDelta::zero();
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = config_of(QdiscKind::kFqCoDel);
  EXPECT_NO_THROW(c.validate());
  c.fq_flows = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = config_of(QdiscKind::kFqCoDel);
  c.fq_quantum = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.fq_quantum = 1514;
  c.codel_interval = c.codel_target;  // fq-codel runs the codel law too
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = config_of(QdiscKind::kPie);
  EXPECT_NO_THROW(c.validate());
  c.pie_tupdate = TimeDelta::zero();
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = config_of(QdiscKind::kPie);
  c.pie_target = TimeDelta::zero();
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = config_of(QdiscKind::kPie);
  c.pie_alpha = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = config_of(QdiscKind::kPie);
  c.pie_mark_ecnth = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = config_of(QdiscKind::kRed);
  EXPECT_NO_THROW(c.validate());
  c.red_min_bytes = 1000;
  c.red_max_bytes = 1000;  // min must stay below max
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = config_of(QdiscKind::kRed);
  c.red_wq = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = config_of(QdiscKind::kRed);
  c.red_max_p = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = config_of(QdiscKind::kRed);
  c.red_min_bytes = -1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(QdiscConfig, KindNamesRoundTrip) {
  for (const QdiscKind k :
       {QdiscKind::kDropTail, QdiscKind::kCoDel, QdiscKind::kFqCoDel,
        QdiscKind::kPie, QdiscKind::kRed}) {
    EXPECT_EQ(qdisc_kind_from_name(qdisc_kind_name(k)), k);
  }
  EXPECT_THROW((void)qdisc_kind_from_name("taildrop"), std::invalid_argument);
  EXPECT_THROW((void)qdisc_kind_from_name(""), std::invalid_argument);
}

TEST(QdiscConfig, DerivedSeedIsDistinctFromOtherStreams) {
  // The qdisc stream must not alias the cell seed or the impairment
  // stream; same cell seed always derives the same qdisc seed.
  for (const uint64_t cell : {0ULL, 1ULL, 42ULL, 0xDEADBEEFULL}) {
    EXPECT_EQ(derive_qdisc_seed(cell), derive_qdisc_seed(cell));
    EXPECT_NE(derive_qdisc_seed(cell), cell);
    EXPECT_NE(derive_qdisc_seed(cell), derive_impairment_seed(cell));
  }
  EXPECT_NE(derive_qdisc_seed(1), derive_qdisc_seed(2));
}

TEST(QdiscFactory, BuildsEveryKindAndValidatesCapacity) {
  Simulator sim;
  for (const QdiscKind k :
       {QdiscKind::kDropTail, QdiscKind::kCoDel, QdiscKind::kFqCoDel,
        QdiscKind::kPie, QdiscKind::kRed}) {
    const auto q = make_qdisc(sim, config_of(k), 100'000);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->capacity_bytes(), 100'000);
    EXPECT_FALSE(q->has_packet());
  }
  EXPECT_THROW(make_qdisc(sim, config_of(QdiscKind::kCoDel), 0),
               std::invalid_argument);
}

// --------------------------------------------------------- base class ----

TEST(QueueDiscBase, ShrinkBelowOccupancyFlagTracksDrain) {
  QdiscFixture f(config_of(QdiscKind::kDropTail), DataRate::kbps(100),
                 10 * kDataPacketBytes);
  // One packet goes straight into transmission; four stay buffered.
  for (int i = 0; i < 5; ++i) f.queue->accept(data_packet(0, i));
  ASSERT_EQ(f.queue->queued_packets(), 4u);
  EXPECT_FALSE(f.queue->shrunk_below_occupancy());

  f.queue->set_capacity(2 * kDataPacketBytes);  // below live occupancy
  EXPECT_TRUE(f.queue->shrunk_below_occupancy());
  // A shrink that stays above occupancy does not set the flag.
  f.queue->set_capacity(20 * kDataPacketBytes);
  EXPECT_FALSE(f.queue->shrunk_below_occupancy());
  f.queue->set_capacity(2 * kDataPacketBytes);
  EXPECT_TRUE(f.queue->shrunk_below_occupancy());

  // Draining back under the shrunken capacity clears the flag.
  f.sim.run();
  EXPECT_FALSE(f.queue->shrunk_below_occupancy());
  EXPECT_EQ(f.queue->queued_packets(), 0u);

  EXPECT_THROW(f.queue->set_capacity(0), std::invalid_argument);
}

TEST(QueueDiscBase, DropTailRecordsNoSojournSamples) {
  // Drop-tail predates sojourn tracking; its stats must stay byte-identical
  // to the original queue, which means zero sojourn samples.
  QdiscFixture f(config_of(QdiscKind::kDropTail), DataRate::mbps(100),
                 10 * kDataPacketBytes);
  for (int i = 0; i < 5; ++i) f.queue->accept(data_packet(0, i));
  f.sim.run();
  EXPECT_EQ(f.queue->stats().dequeued_packets, 5u);
  EXPECT_EQ(f.queue->stats().sojourn_samples, 0u);
  EXPECT_EQ(f.queue->stats().head_dropped_packets, 0u);
  EXPECT_EQ(f.queue->stats().marked_packets, 0u);
}

TEST(QueueDiscBase, ResetAccountingClearsMarkCounters) {
  QdiscFixture f(config_of(QdiscKind::kCoDel, /*ecn=*/true),
                 DataRate::mbps(2), 100 * kDataPacketBytes);
  f.queue->reserve_flows(1);
  offer_load(f, TimeDelta::micros(500), TimeDelta::seconds(1), 1, /*ect=*/true);
  ASSERT_GT(f.queue->stats().marked_packets, 0u);
  ASSERT_GT(f.queue->per_flow_marks()[0], 0u);
  f.queue->reset_accounting();
  EXPECT_EQ(f.queue->stats().marked_packets, 0u);
  EXPECT_EQ(f.queue->per_flow_marks()[0], 0u);
  EXPECT_EQ(f.queue->stats().sojourn_samples, 0u);
}

// -------------------------------------------------------------- codel ----

TEST(CoDel, NoDropsWhileSojournStaysBelowTarget) {
  // 10 Mbps link, arrivals at half the service rate: the queue never
  // builds, sojourn stays near zero, CoDel never enters dropping state.
  QdiscFixture f(config_of(QdiscKind::kCoDel), DataRate::mbps(10),
                 100 * kDataPacketBytes);
  offer_load(f, TimeDelta::micros(2400), TimeDelta::seconds(1), 1, false);
  EXPECT_EQ(f.queue->stats().head_dropped_packets, 0u);
  EXPECT_EQ(f.queue->stats().dropped_packets, 0u);
  EXPECT_GT(f.queue->stats().sojourn_samples, 0u);
  auto* codel = static_cast<CoDelQueue*>(f.queue.get());
  EXPECT_FALSE(codel->dropping());
}

TEST(CoDel, HeadDropsUnderStandingQueue) {
  // Mild persistent overload: packets every 1.15 ms into a 1.2 ms service
  // time. The excess builds a standing queue above the 5 ms target, so
  // CoDel must head-drop; because the overload is only ~4% the sqrt
  // control law can actually absorb it and hold the delay near target,
  // far below the 240 ms uncontrolled full-buffer delay.
  QdiscFixture f(config_of(QdiscKind::kCoDel), DataRate::mbps(10),
                 200 * kDataPacketBytes);
  f.queue->reserve_flows(1);
  offer_load(f, TimeDelta::micros(1150), TimeDelta::seconds(4), 1, false);
  const QueueStats& st = f.queue->stats();
  EXPECT_GT(st.head_dropped_packets, 0u);
  EXPECT_EQ(st.head_dropped_packets + st.dequeued_packets +
                f.queue->queued_packets(),
            st.enqueued_packets);
  EXPECT_EQ(f.queue->per_flow_drops()[0],
            st.head_dropped_packets + st.dropped_packets);
  // Head drops land in the drop log like tail drops.
  EXPECT_EQ(f.queue->drop_log().size(),
            st.head_dropped_packets + st.dropped_packets);
  // Controlled: mean sojourn far below the 240 ms full-buffer drain time.
  const double mean_ms = static_cast<double>(st.sojourn_ns_sum) /
                         static_cast<double>(st.sojourn_samples) / 1e6;
  EXPECT_LT(mean_ms, 60.0);
}

TEST(CoDel, EcnMarksEctPacketsInsteadOfDropping) {
  QdiscFixture f(config_of(QdiscKind::kCoDel, /*ecn=*/true),
                 DataRate::mbps(10), 200 * kDataPacketBytes);
  offer_load(f, TimeDelta::micros(600), TimeDelta::seconds(2), 1, /*ect=*/true);
  EXPECT_EQ(f.queue->stats().head_dropped_packets, 0u);
  EXPECT_GT(f.queue->stats().marked_packets, 0u);
  uint64_t ce_delivered = 0;
  for (const Packet& p : f.sink.packets) {
    if ((p.ecn & kEcnCe) != 0) {
      ++ce_delivered;
      EXPECT_NE(p.ecn & kEcnEct, 0);
    }
  }
  EXPECT_EQ(ce_delivered, f.queue->stats().marked_packets);
}

TEST(CoDel, NonEctPacketsAreDroppedEvenWithEcnOn) {
  QdiscFixture f(config_of(QdiscKind::kCoDel, /*ecn=*/true),
                 DataRate::mbps(10), 200 * kDataPacketBytes);
  offer_load(f, TimeDelta::micros(600), TimeDelta::seconds(2), 1, /*ect=*/false);
  EXPECT_GT(f.queue->stats().head_dropped_packets, 0u);
  EXPECT_EQ(f.queue->stats().marked_packets, 0u);
}

TEST(CoDel, TailDropsWhenBufferOverflows) {
  // Tiny buffer: CoDel still refuses arrivals that do not fit.
  QdiscFixture f(config_of(QdiscKind::kCoDel), DataRate::kbps(100),
                 2 * kDataPacketBytes);
  for (int i = 0; i < 6; ++i) f.queue->accept(data_packet(0, i));
  EXPECT_GT(f.queue->stats().dropped_packets, 0u);
}

// ----------------------------------------------------------- fq-codel ----

TEST(FqCoDel, BucketHashIsStableAndInRange) {
  QdiscConfig c = config_of(QdiscKind::kFqCoDel);
  c.fq_flows = 16;
  Simulator sim;
  const auto q = make_qdisc(sim, c, 100'000);
  auto* fq = static_cast<FqCoDelQueue*>(q.get());
  for (uint32_t flow = 0; flow < 64; ++flow) {
    EXPECT_LT(fq->bucket_of(flow), 16u);
    EXPECT_EQ(fq->bucket_of(flow), fq->bucket_of(flow));
  }
  // A different seed permutes the placement (overwhelmingly likely over
  // 64 flows).
  QdiscConfig c2 = c;
  c2.seed = 12345;
  const auto q2 = make_qdisc(sim, c2, 100'000);
  auto* fq2 = static_cast<FqCoDelQueue*>(q2.get());
  bool any_moved = false;
  for (uint32_t flow = 0; flow < 64; ++flow) {
    any_moved = any_moved || fq->bucket_of(flow) != fq2->bucket_of(flow);
  }
  EXPECT_TRUE(any_moved);
}

TEST(FqCoDel, IsolatesThinFlowFromFatFlow) {
  // Flow 0 offers 1.6x the link rate; flow 1 offers 0.4x. Under drop-tail
  // they would share the drop pain; under FQ-CoDel the thin flow must get
  // everything it offered (zero drops) while the fat flow absorbs all of
  // the overload — per-flow isolation, the paper's fairness mechanism.
  QdiscConfig c = config_of(QdiscKind::kFqCoDel);
  c.fq_flows = 64;
  QdiscFixture f(c, DataRate::mbps(10), 300 * kDataPacketBytes);
  f.queue->reserve_flows(2);
  const Time stop = Time::zero() + TimeDelta::seconds(3);
  uint64_t seq = 0;
  uint64_t offered[2] = {0, 0};
  for (Time t = Time::zero(); t < stop;
       t = t + TimeDelta::micros(600), ++seq) {
    const uint32_t flow = (seq % 5 == 0) ? 1 : 0;  // 4:1 offered ratio
    ++offered[flow];
    f.sim.schedule_fn_at(t, [&f, flow, seq] {
      f.queue->accept(data_packet(flow, seq));
    });
  }
  f.sim.run_until(stop + TimeDelta::seconds(1));
  uint64_t delivered[2] = {0, 0};
  for (const Packet& p : f.sink.packets) ++delivered[p.flow_id];
  ASSERT_GT(delivered[0], 0u);
  // The thin flow never stands in queue: no drops of any kind, everything
  // it offered is delivered (the hash is collision-free for 2 flows in 64
  // buckets with this seed).
  EXPECT_EQ(f.queue->per_flow_drops()[1], 0u);
  EXPECT_EQ(delivered[1], offered[1]);
  // The fat flow pays for the whole 2x aggregate overload.
  EXPECT_GT(f.queue->per_flow_drops()[0], 0u);
  // And it still cannot starve the thin flow below its offered share: the
  // delivered ratio stays at the fat flow's leftover capacity (~1.5x),
  // nowhere near the 4x offered ratio.
  const double ratio = static_cast<double>(delivered[0]) /
                       static_cast<double>(delivered[1]);
  EXPECT_LT(ratio, 2.0);
}

TEST(FqCoDel, OverflowEvictsFromFattestFlow) {
  // Flow 0 fills the whole buffer; a later flow-1 arrival must evict from
  // flow 0 (head drop) instead of being tail-dropped.
  QdiscConfig c = config_of(QdiscKind::kFqCoDel);
  QdiscFixture f(c, DataRate::kbps(10), 10 * kDataPacketBytes);
  f.queue->reserve_flows(2);
  for (int i = 0; i < 12; ++i) f.queue->accept(data_packet(0, i));
  const uint64_t fat_drops = f.queue->stats().head_dropped_packets +
                             f.queue->stats().dropped_packets;
  f.queue->accept(data_packet(1, 100));
  EXPECT_GT(f.queue->stats().head_dropped_packets +
                f.queue->stats().dropped_packets,
            fat_drops);
  EXPECT_EQ(f.queue->per_flow_drops()[1], 0u);  // the sparse flow got in
  EXPECT_GT(f.queue->per_flow_drops()[0], 0u);
  f.sim.run();
  bool flow1_delivered = false;
  for (const Packet& p : f.sink.packets) {
    flow1_delivered = flow1_delivered || p.flow_id == 1;
  }
  EXPECT_TRUE(flow1_delivered);
}

TEST(FqCoDel, EcnMarksPerFlow) {
  QdiscConfig c = config_of(QdiscKind::kFqCoDel, /*ecn=*/true);
  QdiscFixture f(c, DataRate::mbps(10), 300 * kDataPacketBytes);
  f.queue->reserve_flows(2);
  offer_load(f, TimeDelta::micros(600), TimeDelta::seconds(3), 2, /*ect=*/true);
  EXPECT_GT(f.queue->stats().marked_packets, 0u);
  EXPECT_EQ(f.queue->per_flow_marks()[0] + f.queue->per_flow_marks()[1],
            f.queue->stats().marked_packets);
}

// ---------------------------------------------------------------- pie ----

TEST(Pie, ProbabilityRisesUnderStandingQueueAndDropsAtEnqueue) {
  QdiscFixture f(config_of(QdiscKind::kPie), DataRate::mbps(10),
                 400 * kDataPacketBytes);
  offer_load(f, TimeDelta::micros(600), TimeDelta::seconds(4), 1, false);
  const QueueStats& st = f.queue->stats();
  // PIE drops at enqueue (tail), never post-admission.
  EXPECT_GT(st.dropped_packets, 0u);
  EXPECT_EQ(st.head_dropped_packets, 0u);
  // The controller held the delay near the 15 ms target, far below the
  // ~480 ms uncontrolled full-buffer drain time.
  const double mean_ms = static_cast<double>(st.sojourn_ns_sum) /
                         static_cast<double>(st.sojourn_samples) / 1e6;
  EXPECT_LT(mean_ms, 60.0);
}

TEST(Pie, IdleQueueDecaysProbabilityAndDropsNothing) {
  QdiscFixture f(config_of(QdiscKind::kPie), DataRate::mbps(10),
                 400 * kDataPacketBytes);
  // Light load: delay stays at zero, probability never charges.
  offer_load(f, TimeDelta::millis(5), TimeDelta::seconds(2), 1, false);
  EXPECT_EQ(f.queue->stats().dropped_packets, 0u);
  auto* pie = static_cast<PieQueue*>(f.queue.get());
  EXPECT_DOUBLE_EQ(pie->drop_probability(), 0.0);
}

TEST(Pie, MarksEctWhileProbabilityIsSmall) {
  QdiscConfig c = config_of(QdiscKind::kPie, /*ecn=*/true);
  QdiscFixture f(c, DataRate::mbps(10), 400 * kDataPacketBytes);
  offer_load(f, TimeDelta::micros(700), TimeDelta::seconds(4), 1, /*ect=*/true);
  EXPECT_GT(f.queue->stats().marked_packets, 0u);
}

// ---------------------------------------------------------------- red ----

TEST(Red, AutoThresholdsDeriveFromCapacity) {
  Simulator sim;
  const auto q = make_qdisc(sim, config_of(QdiscKind::kRed), 60'000);
  auto* red = static_cast<RedQueue*>(q.get());
  EXPECT_EQ(red->min_bytes(), 10'000);
  EXPECT_EQ(red->max_bytes(), 30'000);

  QdiscConfig c = config_of(QdiscKind::kRed);
  c.red_min_bytes = 5'000;
  c.red_max_bytes = 15'000;
  const auto q2 = make_qdisc(sim, c, 60'000);
  auto* red2 = static_cast<RedQueue*>(q2.get());
  EXPECT_EQ(red2->min_bytes(), 5'000);
  EXPECT_EQ(red2->max_bytes(), 15'000);
}

TEST(Red, EarlyDropsAppearBetweenThresholds) {
  QdiscFixture f(config_of(QdiscKind::kRed), DataRate::mbps(10),
                 60 * kDataPacketBytes);
  offer_load(f, TimeDelta::micros(600), TimeDelta::seconds(4), 1, false);
  const QueueStats& st = f.queue->stats();
  EXPECT_GT(st.dropped_packets, 0u);
  // RED's early drops keep the average below max: most arrivals survive.
  EXPECT_GT(st.enqueued_packets, st.dropped_packets);
  auto* red = static_cast<RedQueue*>(f.queue.get());
  EXPECT_GT(red->avg_bytes(), 0.0);
}

TEST(Red, EcnMarksInsteadOfEarlyDrops) {
  QdiscFixture f(config_of(QdiscKind::kRed, /*ecn=*/true), DataRate::mbps(10),
                 60 * kDataPacketBytes);
  offer_load(f, TimeDelta::micros(900), TimeDelta::seconds(4), 1, /*ect=*/true);
  EXPECT_GT(f.queue->stats().marked_packets, 0u);
}

TEST(Red, IdlePeriodDecaysAverage) {
  QdiscFixture f(config_of(QdiscKind::kRed), DataRate::mbps(10),
                 60 * kDataPacketBytes);
  // Build an average, then go idle and probe with one packet: update_avg
  // must have decayed the EWMA toward zero.
  offer_load(f, TimeDelta::micros(600), TimeDelta::millis(200), 1, false);
  auto* red = static_cast<RedQueue*>(f.queue.get());
  const double avg_busy = red->avg_bytes();
  ASSERT_GT(avg_busy, 0.0);
  f.sim.run_until(f.sim.now() + TimeDelta::seconds(2));  // drain + idle
  ASSERT_FALSE(f.queue->has_packet());
  f.queue->accept(data_packet(0, 999'999));
  EXPECT_LT(red->avg_bytes(), avg_busy * 0.5);
  f.sim.run();
}

}  // namespace
}  // namespace ccas
