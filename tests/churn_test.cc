// Tests for finite flows and the churn (arrival/departure) extension.
#include <gtest/gtest.h>

#include <bit>
#include <memory>

#include "src/cca/new_reno.h"
#include "src/harness/churn.h"
#include "src/net/delay_line.h"
#include "src/net/topology.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

namespace ccas {
namespace {

// ---------------------------------------------------- finite senders ----

class Forward : public PacketSink {
 public:
  void accept(Packet&& pkt) override { target_->accept(std::move(pkt)); }
  void set_target(PacketSink* t) { target_ = t; }

 private:
  PacketSink* target_ = nullptr;
};

TEST(FiniteFlow, CompletesAndQuiesces) {
  Simulator sim;
  Forward to_sender;
  DelayLine rev(sim, TimeDelta::millis(5), &to_sender);
  TcpReceiver rcv(sim, 0, &rev);
  DelayLine fwd(sim, TimeDelta::millis(5), &rcv);
  TcpSenderConfig cfg;
  cfg.data_segments = 137;
  TcpSender snd(sim, 0, std::make_unique<NewReno>(), &fwd, cfg);
  to_sender.set_target(&snd);

  int completions = 0;
  snd.set_completion_callback([&] { ++completions; });
  snd.start();
  sim.run();  // the event queue must drain completely: full quiescence
  EXPECT_TRUE(snd.complete());
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(rcv.rcv_nxt(), 137u);
  EXPECT_EQ(snd.stats().segments_sent, 137u);  // no losses on this path
  EXPECT_EQ(snd.inflight(), 0u);
}

TEST(FiniteFlow, InfiniteByDefault) {
  TcpSenderConfig cfg;
  EXPECT_EQ(cfg.data_segments, 0u);
  Simulator sim;
  Forward to_sender;
  DelayLine rev(sim, TimeDelta::millis(5), &to_sender);
  TcpReceiver rcv(sim, 0, &rev);
  DelayLine fwd(sim, TimeDelta::millis(5), &rcv);
  cfg.max_window = 64;
  TcpSender snd(sim, 0, std::make_unique<NewReno>(), &fwd, cfg);
  to_sender.set_target(&snd);
  snd.start();
  sim.run_until(Time::seconds_f(2));
  EXPECT_FALSE(snd.complete());
  EXPECT_GT(rcv.rcv_nxt(), 1000u);
}

// ------------------------------------------------------------- churn ----

ChurnSpec small_churn() {
  ChurnSpec spec;
  spec.scenario.net.bottleneck_rate = DataRate::mbps(50);
  spec.scenario.net.buffer_bytes = 500'000;
  spec.scenario.stagger = TimeDelta::millis(100);
  spec.scenario.warmup = TimeDelta::seconds(1);
  spec.scenario.measure = TimeDelta::seconds(10);
  spec.arrivals_per_sec = 30.0;
  spec.min_size_segments = 5;
  spec.max_size_segments = 2000;
  spec.seed = 11;
  return spec;
}

TEST(Churn, FlowsArriveCompleteAndRespectSizeBounds) {
  const ChurnResult r = run_churn_experiment(small_churn());
  // ~30/s over ~11s.
  EXPECT_GT(r.flows_started, 200u);
  EXPECT_LT(r.flows_started, 500u);
  EXPECT_GT(r.flows_completed, r.flows_started / 2);
  EXPECT_LE(r.flows_completed, r.flows_started);
  ASSERT_EQ(r.completed_sizes.size(), r.fct_seconds.size());
  for (size_t i = 0; i < r.completed_sizes.size(); ++i) {
    EXPECT_GE(r.completed_sizes[i], 5u);
    EXPECT_LE(r.completed_sizes[i], 2000u);
    EXPECT_GT(r.fct_seconds[i], 0.0);
    EXPECT_LT(r.fct_seconds[i], 12.0);
  }
  EXPECT_GT(r.mean_fct(), 0.0);
  EXPECT_GE(r.mean_fct(), r.median_fct() * 0.5);
}

TEST(Churn, HeavyTailMeansSmallFlowsFinishFaster) {
  ChurnSpec spec = small_churn();
  spec.scenario.measure = TimeDelta::seconds(20);
  const ChurnResult r = run_churn_experiment(spec);
  const double small = r.mean_fct_sized(0, 20);
  const double large = r.mean_fct_sized(500, 1'000'000);
  ASSERT_GT(small, 0.0);
  ASSERT_GT(large, 0.0);
  EXPECT_LT(small, large);
}

TEST(Churn, DeterministicPerSeed) {
  const ChurnResult a = run_churn_experiment(small_churn());
  const ChurnResult b = run_churn_experiment(small_churn());
  EXPECT_EQ(a.flows_started, b.flows_started);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  ASSERT_EQ(a.fct_seconds.size(), b.fct_seconds.size());
  for (size_t i = 0; i < a.fct_seconds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fct_seconds[i], b.fct_seconds[i]);
  }
  ChurnSpec other = small_churn();
  other.seed = 12;
  const ChurnResult c = run_churn_experiment(other);
  EXPECT_NE(a.flows_started, c.flows_started);
}

TEST(Churn, BackgroundFlowsCoexist) {
  ChurnSpec spec = small_churn();
  spec.background.push_back(FlowGroup{"cubic", 2, TimeDelta::millis(20)});
  const ChurnResult r = run_churn_experiment(spec);
  EXPECT_GT(r.background_goodput_bps, 1e6);  // the long flows got bandwidth
  EXPECT_GT(r.flows_completed, 0u);          // and so did the churn
  EXPECT_GT(r.utilization, 0.5);
  EXPECT_LT(r.utilization, 1.1);
}

TEST(Churn, ConcurrencyCapRejectsArrivals) {
  ChurnSpec spec = small_churn();
  spec.max_concurrent = 1;
  spec.arrivals_per_sec = 200.0;
  spec.min_size_segments = 5000;  // slow to finish: cap binds
  spec.max_size_segments = 5000;
  const ChurnResult r = run_churn_experiment(spec);
  EXPECT_GT(r.arrivals_rejected, 0u);
}

// ------------------------------------------- memory-path invariance ----

// FNV-1a over every observable ChurnResult field. The exact values below
// were recorded from the heap-per-flow implementation that predates the
// FlowTable/reaper memory path (DESIGN.md §12); the arena-backed,
// slot-recycling runner must reproduce them bit for bit. A mismatch means
// the memory refactor changed event order, an RNG stream, or teardown
// accounting — behavior, not layout.
struct ResultDigest {
  uint64_t h = 1469598103934665603ull;
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void f64(double v) { u64(std::bit_cast<uint64_t>(v)); }
};

uint64_t churn_digest(const ChurnResult& r) {
  ResultDigest f;
  f.u64(r.flows_started);
  f.u64(r.flows_completed);
  f.u64(r.arrivals_rejected);
  f.u64(r.completed_sizes.size());
  for (uint64_t s : r.completed_sizes) f.u64(s);
  for (double t : r.fct_seconds) f.f64(t);
  f.f64(r.utilization);
  f.f64(r.background_goodput_bps);
  f.u64(r.queue.enqueued_packets);
  f.u64(r.queue.enqueued_bytes);
  f.u64(r.queue.dequeued_packets);
  f.u64(r.queue.dropped_packets);
  f.u64(r.queue.dropped_bytes);
  f.u64(static_cast<uint64_t>(r.queue.max_queued_bytes));
  return f.h;
}

TEST(ChurnDigest, PlainRunIsPinned) {
  EXPECT_EQ(churn_digest(run_churn_experiment(small_churn())),
            0x4374d2120b041bd4ull);
}

TEST(ChurnDigest, BackgroundRunIsPinned) {
  ChurnSpec spec = small_churn();
  spec.background.push_back(FlowGroup{"cubic", 2, TimeDelta::millis(20)});
  EXPECT_EQ(churn_digest(run_churn_experiment(spec)), 0x2910d90d6a6347a7ull);
}

TEST(ChurnDigest, CappedRunIsPinned) {
  ChurnSpec spec = small_churn();
  spec.max_concurrent = 4;
  spec.arrivals_per_sec = 120.0;
  spec.cca = "cubic";
  spec.seed = 7;
  EXPECT_EQ(churn_digest(run_churn_experiment(spec)), 0x097be662f4db1be6ull);
}

TEST(ChurnDigest, ShardedRunsArePinned) {
  ChurnSpec spec = small_churn();
  spec.background.push_back(FlowGroup{"cubic", 2, TimeDelta::millis(20)});
  spec.background.push_back(FlowGroup{"newreno", 2, TimeDelta::millis(40)});
  spec.shards = 2;
  EXPECT_EQ(churn_digest(run_churn_experiment(spec)), 0x6cfb801594901fffull);
  spec.shards = 4;
  EXPECT_EQ(churn_digest(run_churn_experiment(spec)), 0x6cfb801594901fffull);
}

TEST(Churn, RecyclesDepartedFlowSlots) {
  // Steady-state churn must run on recycled slabs: most completed flows
  // are reaped before the run ends (the rest completed within the final
  // grace window), and most arrivals after warm-up reuse a parked slab.
  // Under ASan this doubles as a use-after-free check on the reaper's
  // grace/timer-entry safety argument.
  const ChurnResult r = run_churn_experiment(small_churn());
  EXPECT_GT(r.slots_recycled, r.flows_completed / 2);
  EXPECT_LE(r.slots_recycled, r.flows_completed);
  EXPECT_GT(r.slab_reuses, r.flows_started / 2);
  EXPECT_LE(r.slab_reuses, r.slots_recycled);
}

TEST(Churn, RecyclingUnderImpairmentsAndBackground) {
  // Harder teardown conditions: loss and reordering leave retransmission
  // timers and stray duplicates behind departed flows; the reaper must
  // still only recycle quiescent slots (ASan-visible if it does not).
  ChurnSpec spec = small_churn();
  spec.background.push_back(FlowGroup{"cubic", 1, TimeDelta::millis(30)});
  spec.scenario.net.impairments.loss = 0.01;
  spec.scenario.net.impairments.reorder = 0.01;
  const ChurnResult r = run_churn_experiment(spec);
  EXPECT_GT(r.flows_completed, 0u);
  EXPECT_GT(r.slots_recycled, 0u);
}

TEST(Churn, Validation) {
  ChurnSpec bad = small_churn();
  bad.pareto_alpha = 0.0;
  EXPECT_THROW(run_churn_experiment(bad), std::invalid_argument);
  bad = small_churn();
  bad.min_size_segments = 0;
  EXPECT_THROW(run_churn_experiment(bad), std::invalid_argument);
  bad = small_churn();
  bad.cca = "unknown";
  EXPECT_THROW(run_churn_experiment(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ccas
