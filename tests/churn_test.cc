// Tests for finite flows and the churn (arrival/departure) extension.
#include <gtest/gtest.h>

#include <memory>

#include "src/cca/new_reno.h"
#include "src/harness/churn.h"
#include "src/net/delay_line.h"
#include "src/net/topology.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

namespace ccas {
namespace {

// ---------------------------------------------------- finite senders ----

class Forward : public PacketSink {
 public:
  void accept(Packet&& pkt) override { target_->accept(std::move(pkt)); }
  void set_target(PacketSink* t) { target_ = t; }

 private:
  PacketSink* target_ = nullptr;
};

TEST(FiniteFlow, CompletesAndQuiesces) {
  Simulator sim;
  Forward to_sender;
  DelayLine rev(sim, TimeDelta::millis(5), &to_sender);
  TcpReceiver rcv(sim, 0, &rev);
  DelayLine fwd(sim, TimeDelta::millis(5), &rcv);
  TcpSenderConfig cfg;
  cfg.data_segments = 137;
  TcpSender snd(sim, 0, std::make_unique<NewReno>(), &fwd, cfg);
  to_sender.set_target(&snd);

  int completions = 0;
  snd.set_completion_callback([&] { ++completions; });
  snd.start();
  sim.run();  // the event queue must drain completely: full quiescence
  EXPECT_TRUE(snd.complete());
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(rcv.rcv_nxt(), 137u);
  EXPECT_EQ(snd.stats().segments_sent, 137u);  // no losses on this path
  EXPECT_EQ(snd.inflight(), 0u);
}

TEST(FiniteFlow, InfiniteByDefault) {
  TcpSenderConfig cfg;
  EXPECT_EQ(cfg.data_segments, 0u);
  Simulator sim;
  Forward to_sender;
  DelayLine rev(sim, TimeDelta::millis(5), &to_sender);
  TcpReceiver rcv(sim, 0, &rev);
  DelayLine fwd(sim, TimeDelta::millis(5), &rcv);
  cfg.max_window = 64;
  TcpSender snd(sim, 0, std::make_unique<NewReno>(), &fwd, cfg);
  to_sender.set_target(&snd);
  snd.start();
  sim.run_until(Time::seconds_f(2));
  EXPECT_FALSE(snd.complete());
  EXPECT_GT(rcv.rcv_nxt(), 1000u);
}

// ------------------------------------------------------------- churn ----

ChurnSpec small_churn() {
  ChurnSpec spec;
  spec.scenario.net.bottleneck_rate = DataRate::mbps(50);
  spec.scenario.net.buffer_bytes = 500'000;
  spec.scenario.stagger = TimeDelta::millis(100);
  spec.scenario.warmup = TimeDelta::seconds(1);
  spec.scenario.measure = TimeDelta::seconds(10);
  spec.arrivals_per_sec = 30.0;
  spec.min_size_segments = 5;
  spec.max_size_segments = 2000;
  spec.seed = 11;
  return spec;
}

TEST(Churn, FlowsArriveCompleteAndRespectSizeBounds) {
  const ChurnResult r = run_churn_experiment(small_churn());
  // ~30/s over ~11s.
  EXPECT_GT(r.flows_started, 200u);
  EXPECT_LT(r.flows_started, 500u);
  EXPECT_GT(r.flows_completed, r.flows_started / 2);
  EXPECT_LE(r.flows_completed, r.flows_started);
  ASSERT_EQ(r.completed_sizes.size(), r.fct_seconds.size());
  for (size_t i = 0; i < r.completed_sizes.size(); ++i) {
    EXPECT_GE(r.completed_sizes[i], 5u);
    EXPECT_LE(r.completed_sizes[i], 2000u);
    EXPECT_GT(r.fct_seconds[i], 0.0);
    EXPECT_LT(r.fct_seconds[i], 12.0);
  }
  EXPECT_GT(r.mean_fct(), 0.0);
  EXPECT_GE(r.mean_fct(), r.median_fct() * 0.5);
}

TEST(Churn, HeavyTailMeansSmallFlowsFinishFaster) {
  ChurnSpec spec = small_churn();
  spec.scenario.measure = TimeDelta::seconds(20);
  const ChurnResult r = run_churn_experiment(spec);
  const double small = r.mean_fct_sized(0, 20);
  const double large = r.mean_fct_sized(500, 1'000'000);
  ASSERT_GT(small, 0.0);
  ASSERT_GT(large, 0.0);
  EXPECT_LT(small, large);
}

TEST(Churn, DeterministicPerSeed) {
  const ChurnResult a = run_churn_experiment(small_churn());
  const ChurnResult b = run_churn_experiment(small_churn());
  EXPECT_EQ(a.flows_started, b.flows_started);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  ASSERT_EQ(a.fct_seconds.size(), b.fct_seconds.size());
  for (size_t i = 0; i < a.fct_seconds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fct_seconds[i], b.fct_seconds[i]);
  }
  ChurnSpec other = small_churn();
  other.seed = 12;
  const ChurnResult c = run_churn_experiment(other);
  EXPECT_NE(a.flows_started, c.flows_started);
}

TEST(Churn, BackgroundFlowsCoexist) {
  ChurnSpec spec = small_churn();
  spec.background.push_back(FlowGroup{"cubic", 2, TimeDelta::millis(20)});
  const ChurnResult r = run_churn_experiment(spec);
  EXPECT_GT(r.background_goodput_bps, 1e6);  // the long flows got bandwidth
  EXPECT_GT(r.flows_completed, 0u);          // and so did the churn
  EXPECT_GT(r.utilization, 0.5);
  EXPECT_LT(r.utilization, 1.1);
}

TEST(Churn, ConcurrencyCapRejectsArrivals) {
  ChurnSpec spec = small_churn();
  spec.max_concurrent = 1;
  spec.arrivals_per_sec = 200.0;
  spec.min_size_segments = 5000;  // slow to finish: cap binds
  spec.max_size_segments = 5000;
  const ChurnResult r = run_churn_experiment(spec);
  EXPECT_GT(r.arrivals_rejected, 0u);
}

TEST(Churn, Validation) {
  ChurnSpec bad = small_churn();
  bad.pareto_alpha = 0.0;
  EXPECT_THROW(run_churn_experiment(bad), std::invalid_argument);
  bad = small_churn();
  bad.min_size_segments = 0;
  EXPECT_THROW(run_churn_experiment(bad), std::invalid_argument);
  bad = small_churn();
  bad.cca = "unknown";
  EXPECT_THROW(run_churn_experiment(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ccas
