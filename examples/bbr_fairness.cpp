// Example: the paper's Finding 5 — BBR's intra-CCA fairness degrades with
// scale even when every flow is BBR at the same RTT. Sweeps the flow count
// on a fixed bottleneck and prints the Jain fairness index, plus the
// per-flow throughput spread that drives it.
//
//   ./build/examples/bbr_fairness [bottleneck_mbps]
#include <cstdio>
#include <cstdlib>

#include "src/harness/report.h"
#include "src/harness/runner.h"
#include "src/util/stats.h"

int main(int argc, char** argv) {
  using namespace ccas;

  const int mbps = argc > 1 ? std::atoi(argv[1]) : 400;

  Table t({"bbr flows", "JFI", "util", "p10 flow", "median flow", "p90 flow"});
  std::printf("All-BBR fairness sweep on a %d Mbps drop-tail bottleneck "
              "(20 ms RTT, buffer ~1 BDP@200ms)...\n\n",
              mbps);

  for (const int flows : {2, 8, 32, 128, 512}) {
    ExperimentSpec spec;
    spec.scenario = Scenario::core_scale();
    spec.scenario.net.bottleneck_rate = DataRate::mbps(mbps);
    spec.scenario.net.buffer_bytes =
        bdp_bytes(spec.scenario.net.bottleneck_rate, TimeDelta::millis(200)) * 3 / 2;
    spec.scenario.stagger = TimeDelta::seconds(2);
    spec.scenario.warmup = TimeDelta::seconds(15);
    spec.scenario.measure = TimeDelta::seconds(45);
    spec.groups.push_back(FlowGroup{"bbr", flows, TimeDelta::millis(20)});
    spec.seed = 42;

    const ExperimentResult r = run_experiment(spec);
    Percentiles p(goodputs_bps(r.flows));
    t.row()
        .col(static_cast<int64_t>(flows))
        .col(r.jfi_all(), 3)
        .pct(r.utilization)
        .col(format_rate(p.at(0.10)))
        .col(format_rate(p.median()))
        .col(format_rate(p.at(0.90)))
        .done();
  }
  t.print();
  std::printf(
      "\nThe paper (Fig. 4): JFI ~0.99 at a few flows, ~0.7 beyond 10 flows at\n"
      "the edge, and as low as 0.4 at core scale - BBR flows desynchronize and\n"
      "some get pinned near the 4-packet minimum window while others hold\n"
      "large bandwidth estimates.\n");
  return 0;
}
