// Example: flow churn — the dynamics the paper's Limitations section sets
// aside. Short heavy-tailed flows arrive Poisson and compete with a few
// long-running flows; prints flow-completion-time percentiles by size and
// what the churn does to the long flows.
//
//   ./build/examples/flow_churn [arrivals_per_sec] [mbps] [background_cca]
#include <cstdio>
#include <cstdlib>

#include "src/harness/churn.h"
#include "src/harness/report.h"
#include "src/util/stats.h"

int main(int argc, char** argv) {
  using namespace ccas;

  const double rate = argc > 1 ? std::atof(argv[1]) : 80.0;
  const int mbps = argc > 2 ? std::atoi(argv[2]) : 100;
  const std::string bg = argc > 3 ? argv[3] : "cubic";

  ChurnSpec spec;
  spec.scenario.net.bottleneck_rate = DataRate::mbps(mbps);
  spec.scenario.net.buffer_bytes =
      bdp_bytes(spec.scenario.net.bottleneck_rate, TimeDelta::millis(200));
  spec.scenario.stagger = TimeDelta::seconds(1);
  spec.scenario.warmup = TimeDelta::seconds(2);
  spec.scenario.measure = TimeDelta::seconds(40);
  spec.arrivals_per_sec = rate;
  spec.min_size_segments = 8;        // ~12 KB
  spec.max_size_segments = 50'000;   // ~72 MB
  spec.pareto_alpha = 1.2;
  spec.background.push_back(FlowGroup{bg, 2, TimeDelta::millis(20)});
  spec.seed = 42;

  std::printf("Churn: Poisson %.0f flows/s (bounded-Pareto sizes) + 2 long %s "
              "flows over %d Mbps...\n\n",
              rate, bg.c_str(), mbps);
  const ChurnResult r = run_churn_experiment(spec);

  std::printf("flows: %llu started, %llu completed (%llu rejected by cap)\n",
              static_cast<unsigned long long>(r.flows_started),
              static_cast<unsigned long long>(r.flows_completed),
              static_cast<unsigned long long>(r.arrivals_rejected));
  std::printf("utilization %.1f%%, long-flow goodput %s, queue drops %llu\n\n",
              r.utilization * 100.0,
              format_rate(r.background_goodput_bps).c_str(),
              static_cast<unsigned long long>(r.queue.dropped_packets));

  Table t({"flow size (segments)", "flows", "mean FCT (s)"});
  const uint64_t buckets[][2] = {
      {0, 15}, {16, 127}, {128, 1023}, {1024, 8191}, {8192, 1u << 30}};
  for (const auto& b : buckets) {
    int n = 0;
    for (const auto s : r.completed_sizes) {
      if (s >= b[0] && s <= b[1]) ++n;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "%llu-%llu",
                  static_cast<unsigned long long>(b[0]),
                  static_cast<unsigned long long>(b[1]));
    t.row()
        .col(label)
        .col(static_cast<int64_t>(n))
        .col(r.mean_fct_sized(b[0], b[1]), 3)
        .done();
  }
  t.print();
  std::printf("\nHeavy tail in action: most flows are mice that finish in a "
              "couple of RTTs;\nthe elephants (and the long %s flows) set the "
              "queue the mice must cross.\n",
              bg.c_str());
  return 0;
}
