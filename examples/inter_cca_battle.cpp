// Example: the paper's Section 5.2 — inter-CCA competition. Puts two CCAs
// head to head over one bottleneck and reports each side's share, next to
// the Ware et al. model prediction when BBR is involved.
//
//   ./build/examples/inter_cca_battle [ccaA] [nA] [ccaB] [nB] [mbps] [rtt_ms]
//
// Defaults: 1 bbr vs 64 newreno on 400 Mbps at 20 ms (the Fig. 6 shape).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/harness/report.h"
#include "src/harness/runner.h"
#include "src/models/ware_bbr.h"

int main(int argc, char** argv) {
  using namespace ccas;

  const std::string cca_a = argc > 1 ? argv[1] : "bbr";
  const int n_a = argc > 2 ? std::atoi(argv[2]) : 1;
  const std::string cca_b = argc > 3 ? argv[3] : "newreno";
  const int n_b = argc > 4 ? std::atoi(argv[4]) : 64;
  const int mbps = argc > 5 ? std::atoi(argv[5]) : 400;
  const int rtt_ms = argc > 6 ? std::atoi(argv[6]) : 20;

  ExperimentSpec spec;
  spec.scenario = Scenario::core_scale();
  spec.scenario.net.bottleneck_rate = DataRate::mbps(mbps);
  spec.scenario.net.buffer_bytes =
      bdp_bytes(spec.scenario.net.bottleneck_rate, TimeDelta::millis(200)) * 3 / 2;
  spec.scenario.stagger = TimeDelta::seconds(2);
  spec.scenario.warmup = TimeDelta::seconds(20);
  spec.scenario.measure = TimeDelta::seconds(60);
  spec.groups.push_back(FlowGroup{cca_a, n_a, TimeDelta::millis(rtt_ms)});
  spec.groups.push_back(FlowGroup{cca_b, n_b, TimeDelta::millis(rtt_ms)});
  spec.seed = 42;

  std::printf("%d x %s vs %d x %s over %d Mbps at %d ms...\n\n", n_a, cca_a.c_str(),
              n_b, cca_b.c_str(), mbps, rtt_ms);
  const ExperimentResult r = run_experiment(spec);
  std::printf("%s\n", summarize(r).c_str());

  const bool a_is_bbr = cca_a == "bbr";
  const bool b_is_bbr = cca_b == "bbr";
  if (a_is_bbr != b_is_bbr) {
    WareBbrParams params;
    params.link = spec.scenario.net.bottleneck_rate;
    params.rtprop = TimeDelta::millis(rtt_ms);
    params.buffer_bytes = spec.scenario.net.buffer_bytes;
    params.num_bbr = a_is_bbr ? n_a : n_b;
    params.num_loss_based = a_is_bbr ? n_b : n_a;
    const WareBbrPrediction pred = WareBbrModel(params).predict();
    const double measured =
        a_is_bbr ? r.groups[0].throughput_share : r.groups[1].throughput_share;
    std::printf("Ware et al. in-flight-cap model predicts BBR share %.1f%% "
                "(measured %.1f%%).\n",
                pred.bbr_fraction * 100.0, measured * 100.0);
  }
  return 0;
}
