// Example: why the paper built a testbed instead of using a fluid model
// (methodology, §3.2). Runs the same NewReno configuration through (a) the
// deterministic fluid-AIMD approximation and (b) the packet-level
// simulator, and contrasts the predictions the paper's findings hinge on.
//
//   ./build/examples/fluid_vs_packet [flows] [mbps]
#include <cstdio>
#include <cstdlib>

#include "src/harness/report.h"
#include "src/harness/runner.h"
#include "src/models/fluid.h"

int main(int argc, char** argv) {
  using namespace ccas;

  const int flows = argc > 1 ? std::atoi(argv[1]) : 50;
  const int mbps = argc > 2 ? std::atoi(argv[2]) : 200;

  // (a) Fluid approximation.
  FluidParams fp;
  fp.capacity = DataRate::mbps(mbps);
  fp.base_rtt = TimeDelta::millis(20);
  fp.buffer_bytes = bdp_bytes(fp.capacity, TimeDelta::millis(200));
  FluidAimdSimulator fluid(fp);
  const FluidResult fr = fluid.run(flows, TimeDelta::seconds(120));

  // (b) Packet-level simulation of the same configuration.
  ExperimentSpec spec;
  spec.scenario.net.bottleneck_rate = fp.capacity;
  spec.scenario.net.buffer_bytes = fp.buffer_bytes;
  spec.scenario.stagger = TimeDelta::seconds(2);
  spec.scenario.warmup = TimeDelta::seconds(20);
  spec.scenario.measure = TimeDelta::seconds(100);
  spec.groups.push_back(FlowGroup{"newreno", flows, TimeDelta::millis(20)});
  spec.seed = 42;
  std::printf("%d NewReno flows over %d Mbps, fluid model vs packet level...\n\n",
              flows, mbps);
  const ExperimentResult pr = run_experiment(spec);

  double ratio_sum = 0.0;
  int ratio_n = 0;
  for (const auto& f : pr.flows) {
    if (f.cwnd_halving_rate > 0.0 && f.packet_loss_rate > 0.0) {
      ratio_sum += f.packet_loss_rate / f.cwnd_halving_rate;
      ++ratio_n;
    }
  }

  Table t({"metric", "fluid model", "packet level"});
  t.row().col("utilization").pct(fr.utilization).pct(pr.utilization).done();
  t.row().col("Jain fairness index").col(fr.jfi, 3).col(pr.jfi_all(), 3).done();
  t.row()
      .col("loss : halving ratio")
      .col(fr.loss_to_halving_ratio, 2)
      .col(ratio_n > 0 ? ratio_sum / ratio_n : 0.0, 2)
      .done();
  t.print();

  std::printf(
      "\nThe fluid limit bakes in the assumptions the paper tests: every loss\n"
      "is one halving (ratio exactly 1) and flows converge to fair shares.\n"
      "The packet-level run shows the burst-loss divergence and the slower,\n"
      "noisier fairness convergence that the paper measures on real stacks.\n");
  return 0;
}
