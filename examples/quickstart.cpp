// Quickstart: run a small EdgeScale experiment — 10 NewReno flows sharing a
// 100 Mbps bottleneck at 20 ms RTT — and print per-group throughput,
// fairness, and the two Mathis `p` metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/harness/report.h"
#include "src/harness/runner.h"
#include "src/stats/mathis_fit.h"

int main() {
  using namespace ccas;

  ExperimentSpec spec;
  spec.scenario = Scenario::edge_scale();
  spec.scenario.stagger = TimeDelta::seconds(1);
  spec.scenario.warmup = TimeDelta::seconds(30);
  // EdgeScale loss events are minutes apart (deep buffer, few flows), so
  // measure long enough to fit the Mathis constant. Still <1 s of wall time.
  spec.scenario.measure = TimeDelta::seconds(240);
  spec.groups.push_back(FlowGroup{"newreno", 10, TimeDelta::millis(20)});
  spec.seed = 42;

  std::printf("Running: 10 NewReno flows, 100 Mbps bottleneck, 20 ms RTT...\n\n");
  const ExperimentResult result = run_experiment(spec);

  std::printf("%s\n", summarize(result).c_str());

  // Mathis fit using the CWND-halving interpretation of p. The model is
  // evaluated against the RTT each flow actually experienced (the drop-tail
  // queue adds ~240 ms of queueing delay on top of the 20 ms base).
  std::vector<MathisObservation> obs;
  for (const auto& f : result.flows) {
    obs.push_back(MathisObservation{f.goodput_bps, f.cwnd_halving_rate,
                                    f.mean_rtt});
  }
  const MathisFit fit = fit_mathis_constant(obs, kMssBytes);
  std::printf("Mathis constant C (CWND halving rate): %.3f, median error %.1f%%\n",
              fit.c, fit.median_error * 100.0);

  std::vector<MathisObservation> obs_loss;
  for (const auto& f : result.flows) {
    obs_loss.push_back(MathisObservation{f.goodput_bps, f.packet_loss_rate,
                                         f.mean_rtt});
  }
  const MathisFit fit_loss = fit_mathis_constant(obs_loss, kMssBytes);
  std::printf("Mathis constant C (packet loss rate):  %.3f, median error %.1f%%\n",
              fit_loss.c, fit_loss.median_error * 100.0);
  return 0;
}
