// Example: watch the bottleneck queue and per-flow windows evolve — an
// ASCII rendering of the time-series tracer. Useful for building intuition
// about why the paper's findings happen (sawtooth synchronization, BBR's
// probe cycles, queue standing waves).
//
//   ./build/examples/queue_dynamics [ccaA] [nA] [ccaB] [nB] [mbps] [seconds]
//
// Default: 3 cubic + 1 bbr on 100 Mbps for 30 s. Also writes
// queue_dynamics_{flows,queue}.csv for plotting.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/harness/report.h"
#include "src/harness/runner.h"

int main(int argc, char** argv) {
  using namespace ccas;

  const std::string cca_a = argc > 1 ? argv[1] : "cubic";
  const int n_a = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::string cca_b = argc > 3 ? argv[3] : "bbr";
  const int n_b = argc > 4 ? std::atoi(argv[4]) : 1;
  const int mbps = argc > 5 ? std::atoi(argv[5]) : 100;
  const int seconds = argc > 6 ? std::atoi(argv[6]) : 30;

  ExperimentSpec spec;
  spec.scenario = Scenario::edge_scale();
  spec.scenario.net.bottleneck_rate = DataRate::mbps(mbps);
  spec.scenario.stagger = TimeDelta::seconds(1);
  spec.scenario.warmup = TimeDelta::seconds(0) + TimeDelta::millis(1);
  spec.scenario.measure = TimeDelta::seconds(seconds);
  spec.groups.push_back(FlowGroup{cca_a, n_a, TimeDelta::millis(20)});
  spec.groups.push_back(FlowGroup{cca_b, n_b, TimeDelta::millis(20)});
  spec.seed = 7;
  spec.trace_interval = TimeDelta::millis(500);

  std::printf("%d x %s + %d x %s over %d Mbps; one row per 500 ms.\n\n", n_a,
              cca_a.c_str(), n_b, cca_b.c_str(), mbps);
  const ExperimentResult r = run_experiment(spec);

  const auto& queue = r.trace.queue();
  std::printf("t(s)   queue occupancy (%% of %lld KB buffer)            flow0 cwnd  flow%d cwnd\n",
              static_cast<long long>(spec.scenario.net.buffer_bytes / 1000), n_a);
  std::printf("------------------------------------------------------------------------------\n");
  const auto& f0 = r.trace.flow(0);
  const auto& fb = r.trace.flow(static_cast<uint32_t>(n_a));  // first of group B
  for (size_t i = 0; i < queue.size(); i += 2) {
    const double frac = static_cast<double>(queue[i].queued_bytes) /
                        static_cast<double>(spec.scenario.net.buffer_bytes);
    const int bars = static_cast<int>(frac * 40.0);
    char bar[64];
    int j = 0;
    for (; j < bars && j < 40; ++j) bar[j] = '#';
    for (; j < 40; ++j) bar[j] = ' ';
    bar[40] = '\0';
    const size_t k = std::min(i, f0.size() - 1);
    const size_t kb = std::min(i, fb.size() - 1);
    std::printf("%5.1f  |%s| %3.0f%%  %10llu  %10llu\n", queue[i].at.sec(), bar,
                frac * 100.0, static_cast<unsigned long long>(f0[k].cwnd),
                static_cast<unsigned long long>(fb[kb].cwnd));
  }

  std::printf("\n%s\n", summarize(r).c_str());
  r.trace.write_csv("queue_dynamics");
  std::printf("(time series written to queue_dynamics_flows.csv / _queue.csv)\n");
  return 0;
}
