// Example: the paper's Section 4 analysis end-to-end — run NewReno at a
// CoreScale-style bottleneck, derive the Mathis constant C with both
// interpretations of p (packet loss rate vs CWND halving rate), and show
// why only the halving rate predicts throughput at scale.
//
//   ./build/examples/mathis_at_scale [flows] [bottleneck_gbps]
//
// Defaults to a 400-flow / 2 Gbps configuration that runs in ~30 s.
#include <cstdio>
#include <cstdlib>

#include "src/harness/report.h"
#include "src/harness/runner.h"
#include "src/models/mathis.h"
#include "src/stats/mathis_fit.h"
#include "src/util/stats.h"

int main(int argc, char** argv) {
  using namespace ccas;

  const int flows = argc > 1 ? std::atoi(argv[1]) : 400;
  const int gbps = argc > 2 ? std::atoi(argv[2]) : 2;

  ExperimentSpec spec;
  spec.scenario = Scenario::core_scale();
  spec.scenario.net.bottleneck_rate = DataRate::gbps(gbps);
  spec.scenario.net.buffer_bytes = bdp_bytes(spec.scenario.net.bottleneck_rate,
                                             TimeDelta::millis(200)) *
                                   3 / 2;  // ~paper's 1.5x-of-BDP sizing
  spec.scenario.stagger = TimeDelta::seconds(2);
  spec.scenario.warmup = TimeDelta::seconds(15);
  spec.scenario.measure = TimeDelta::seconds(60);
  spec.groups.push_back(FlowGroup{"newreno", flows, TimeDelta::millis(20)});
  spec.seed = 42;

  std::printf("Running %d NewReno flows over a %d Gbps drop-tail bottleneck "
              "(20 ms base RTT)...\n\n",
              flows, gbps);
  const ExperimentResult r = run_experiment(spec);
  std::printf("%s\n", summarize(r).c_str());

  std::vector<MathisObservation> by_loss;
  std::vector<MathisObservation> by_halving;
  std::vector<double> ratios;
  for (const auto& f : r.flows) {
    by_loss.push_back(MathisObservation{f.goodput_bps, f.packet_loss_rate, f.mean_rtt});
    by_halving.push_back(
        MathisObservation{f.goodput_bps, f.cwnd_halving_rate, f.mean_rtt});
    if (f.packet_loss_rate > 0 && f.cwnd_halving_rate > 0) {
      ratios.push_back(f.packet_loss_rate / f.cwnd_halving_rate);
    }
  }

  const MathisFit loss = fit_mathis_constant(by_loss, kMssBytes);
  const MathisFit halving = fit_mathis_constant(by_halving, kMssBytes);

  Table t({"p interpretation", "fitted C", "median |error|", "flows fit"});
  t.row()
      .col("packet loss rate")
      .col(loss.c, 3)
      .pct(loss.median_error)
      .col(static_cast<int64_t>(loss.flows_used))
      .done();
  t.row()
      .col("CWND halving rate")
      .col(halving.c, 3)
      .pct(halving.median_error)
      .col(static_cast<int64_t>(halving.flows_used))
      .done();
  t.print();

  if (!ratios.empty()) {
    std::printf("\nper-flow loss-to-halving ratio: median %.2f "
                "(1 would mean every loss halves the window;\n"
                "the paper measures ~1.7 at the edge and 6-9 at core scale)\n",
                median(ratios));
  }

  // Show what the fitted model predicts for a median flow.
  const MathisModel model(halving.c, kMssBytes);
  const auto& mid = r.flows[r.flows.size() / 2];
  if (mid.cwnd_halving_rate > 0) {
    std::printf("\nsample flow %u: measured %s, Mathis(halving) predicts %s\n",
                mid.flow_id, format_rate(mid.goodput_bps).c_str(),
                format_rate(static_cast<double>(
                                model.predict(mid.mean_rtt, mid.cwnd_halving_rate)
                                    .bits_per_sec()))
                    .c_str());
  }
  return 0;
}
